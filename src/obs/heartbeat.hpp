// Interval-gated progress heartbeat for long bench runs.
//
// Purely cosmetic: a Heartbeat prints "[progress] 37/100 restarts (37.0%)
// best=60" lines through obs::log at most once per interval, so an
// 8-thread sweep doesn't scroll thousands of lines.  It never touches the
// deterministic state — drivers only enable it behind --progress, and the
// output goes to stderr at kInfo like every other human-facing message.
//
// Thread-safety: tick() may be called from pool workers while the driver
// (re)configures the instance with enable(); every field — including the
// enabled flag, unit, and interval, which earlier revisions read unlocked
// — is GUARDED_BY(mu_), so the thread-safety build proves the gate
// race-free.  The line formatting is a pure free function so tests can
// pin the format without clocks.
#pragma once

#include <cstdint>
#include <string>

#include "util/budget.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mcopt::obs {

/// "[progress] DONE/TOTAL UNIT (PCT%) best=BEST [RATE/s, eta ETAs] | NOTE".
/// `best` is omitted when NaN; the rate/ETA tail needs `elapsed_seconds`
/// > 0 and `done` > 0 (ETA additionally needs a nonzero total); a
/// non-empty `note` (e.g. an observables digest like "eq 3/6 stages") is
/// appended after " | ".  Pure — the caller supplies the clock reading,
/// so tests can pin the format.
[[nodiscard]] std::string format_progress_line(std::uint64_t done,
                                               std::uint64_t total,
                                               const char* unit, double best,
                                               double elapsed_seconds = 0.0,
                                               const std::string& note = {});

class Heartbeat {
 public:
  /// Disabled: tick() is a no-op.  (The mutex makes Heartbeat immovable,
  /// so process-wide instances start disabled and call enable().)
  Heartbeat() = default;

  /// Emits at most one line per `interval_seconds` (values <= 0 enable
  /// every tick; useful in tests).
  explicit Heartbeat(const char* unit, double interval_seconds) {
    enable(unit, interval_seconds);
  }

  void enable(const char* unit, double interval_seconds) EXCLUDES(mu_) {
    util::MutexLock lock{mu_};
    unit_ = unit;
    interval_ = interval_seconds;
    enabled_ = true;
    printed_any_ = false;
    since_start_.reset();
  }

  [[nodiscard]] bool enabled() const EXCLUDES(mu_) {
    util::MutexLock lock{mu_};
    return enabled_;
  }

  /// Reports progress; prints when the interval has elapsed (and always
  /// for the final tick where done == total).  Safe from any thread.
  /// `note`, when non-empty, rides the line after " | " — the drivers use
  /// it to surface the run's observables digest on the final tick.
  void tick(std::uint64_t done, std::uint64_t total, double best)
      EXCLUDES(mu_);
  void tick(std::uint64_t done, std::uint64_t total, double best,
            const std::string& note) EXCLUDES(mu_);

 private:
  /// Interval gate: decides whether this tick prints and, when it does,
  /// advances the gate state.  Callers hold mu_ (and the signature says
  /// so), which is what makes concurrent tick()s race-free.
  [[nodiscard]] bool should_print_locked(std::uint64_t done,
                                         std::uint64_t total) REQUIRES(mu_);

  mutable util::Mutex mu_;
  bool enabled_ GUARDED_BY(mu_) = false;
  const char* unit_ GUARDED_BY(mu_) = "items";
  double interval_ GUARDED_BY(mu_) = 1.0;
  util::Stopwatch since_last_ GUARDED_BY(mu_);
  /// Drives the rate / ETA estimate.
  util::Stopwatch since_start_ GUARDED_BY(mu_);
  bool printed_any_ GUARDED_BY(mu_) = false;
};

}  // namespace mcopt::obs
