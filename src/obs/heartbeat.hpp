// Interval-gated progress heartbeat for long bench runs.
//
// Purely cosmetic: a Heartbeat prints "[progress] 37/100 restarts (37.0%)
// best=60" lines through obs::log at most once per interval, so an
// 8-thread sweep doesn't scroll thousands of lines.  It never touches the
// deterministic state — drivers only enable it behind --progress, and the
// output goes to stderr at kInfo like every other human-facing message.
//
// Thread-safety: tick() may be called from pool workers; a mutex guards
// the interval gate.  The line formatting is a pure free function so tests
// can pin the format without clocks.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "util/budget.hpp"

namespace mcopt::obs {

/// "[progress] DONE/TOTAL UNIT (PCT%) best=BEST [RATE/s, eta ETAs]".
/// `best` is omitted when NaN; the rate/ETA tail needs `elapsed_seconds`
/// > 0 and `done` > 0 (ETA additionally needs a nonzero total).  Pure —
/// the caller supplies the clock reading, so tests can pin the format.
[[nodiscard]] std::string format_progress_line(std::uint64_t done,
                                               std::uint64_t total,
                                               const char* unit, double best,
                                               double elapsed_seconds = 0.0);

class Heartbeat {
 public:
  /// Disabled: tick() is a no-op.  (The mutex makes Heartbeat immovable,
  /// so process-wide instances start disabled and call enable().)
  Heartbeat() = default;

  /// Emits at most one line per `interval_seconds` (values <= 0 enable
  /// every tick; useful in tests).
  explicit Heartbeat(const char* unit, double interval_seconds) {
    enable(unit, interval_seconds);
  }

  void enable(const char* unit, double interval_seconds) {
    unit_ = unit;
    interval_ = interval_seconds;
    enabled_ = true;
    since_start_.reset();
  }

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Reports progress; prints when the interval has elapsed (and always
  /// for the final tick where done == total).  Safe from any thread.
  void tick(std::uint64_t done, std::uint64_t total, double best);

 private:
  bool enabled_ = false;
  const char* unit_ = "items";
  double interval_ = 1.0;
  std::mutex mu_;
  util::Stopwatch since_last_;
  util::Stopwatch since_start_;  ///< drives the rate / ETA estimate
  bool printed_any_ = false;
};

}  // namespace mcopt::obs
