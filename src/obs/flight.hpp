// The flight recorder: an always-on bounded last-N-events store with a
// crash dump path.
//
// A long annealing run that aborts — a failed invariant, a SIGSEGV in a
// new problem substrate, an operator SIGTERM — normally takes its trace
// with it (or worse, leaves gigabytes of JSONL the crash site is buried
// in).  The flight recorder keeps the *tail* of the event stream in a
// RingBufferSink and, when the process dies abnormally, dumps those last
// N events as schema-valid JSONL from a signal/terminate handler using
// only allocation-free primitives (RingBufferSink::crash_dump).  The dump
// is readable by tools/trace_report.py --validate and diffable by
// tools/trace_forensics.py like any other trace.
//
// It is a process-wide singleton because signal handlers cannot capture
// state.  Lifecycle: arm() once from the main thread before any events
// flow, then install_crash_handlers(); the ring and dump path are never
// re-armed while handlers are live (the crash path reads them unlocked).
// Tracing composes: the driver tees the normal trace sink and the flight
// ring (TeeSink), so --trace and --flight-recorder stack.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "obs/trace.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mcopt::obs {

class FlightRecorder {
 public:
  /// Default last-N capacity of the --flight-recorder driver flag.
  static constexpr std::size_t kDefaultCapacity = 4096;

  static FlightRecorder& instance();

  /// Arms the recorder: allocates a fresh ring of `capacity` events whose
  /// crash dump goes to `dump_path`.  Call from the main thread before
  /// events flow; re-arming after install_crash_handlers() is not
  /// supported (the crash path reads the ring unlocked).
  void arm(std::size_t capacity, std::string dump_path) EXCLUDES(mu_);

  [[nodiscard]] bool armed() const EXCLUDES(mu_);
  /// The sink runs route events into; null when unarmed.
  [[nodiscard]] TraceSink* sink() const EXCLUDES(mu_);
  /// The underlying ring, for inspection; null when unarmed.
  [[nodiscard]] const RingBufferSink* ring() const EXCLUDES(mu_);
  [[nodiscard]] std::string dump_path() const EXCLUDES(mu_);

  /// Installs SIGABRT/SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGTERM handlers and a
  /// std::set_terminate hook that dump the ring then re-raise so the
  /// default disposition (core dump, nonzero exit) still happens.
  /// Idempotent.  Call after arm().
  void install_crash_handlers();

  /// CRASH PATH: dumps the ring to dump_path via open/write — no locks,
  /// no allocation, best-effort (see RingBufferSink::crash_dump).  Safe
  /// from a signal handler.  Returns lines written; at most once per
  /// process crash (reentry-guarded by the callers' once flag).
  std::size_t dump_now() const noexcept;

  /// Normal-path dump of the same events, with locking (exact, not
  /// best-effort).  For tests and orderly shutdowns.  Returns lines
  /// written, 0 when unarmed or the file cannot be opened.
  std::size_t dump_clean() const EXCLUDES(mu_);

 private:
  FlightRecorder() = default;

  mutable util::Mutex mu_;
  std::unique_ptr<RingBufferSink> ring_ GUARDED_BY(mu_);
  std::string path_ GUARDED_BY(mu_);
};

}  // namespace mcopt::obs
