#include "obs/heartbeat.hpp"

#include <cmath>
#include <cstdio>

#include "obs/log.hpp"

namespace mcopt::obs {

std::string format_progress_line(std::uint64_t done, std::uint64_t total,
                                 const char* unit, double best,
                                 double elapsed_seconds,
                                 const std::string& note) {
  const double pct =
      total == 0 ? 100.0
                 : 100.0 * static_cast<double>(done) / static_cast<double>(total);
  char buf[160];
  int n;
  if (std::isnan(best)) {
    n = std::snprintf(buf, sizeof buf, "[progress] %llu/%llu %s (%.1f%%)",
                      static_cast<unsigned long long>(done),
                      static_cast<unsigned long long>(total), unit, pct);
  } else {
    n = std::snprintf(buf, sizeof buf,
                      "[progress] %llu/%llu %s (%.1f%%) best=%g",
                      static_cast<unsigned long long>(done),
                      static_cast<unsigned long long>(total), unit, pct, best);
  }
  std::string out(buf, static_cast<std::size_t>(n > 0 ? n : 0));
  if (elapsed_seconds > 0.0 && done > 0) {
    const double rate = static_cast<double>(done) / elapsed_seconds;
    if (total > done) {
      const double eta = static_cast<double>(total - done) / rate;
      n = std::snprintf(buf, sizeof buf, " [%.1f/s, eta %.0fs]", rate, eta);
    } else {
      n = std::snprintf(buf, sizeof buf, " [%.1f/s]", rate);
    }
    out.append(buf, static_cast<std::size_t>(n > 0 ? n : 0));
  }
  if (!note.empty()) {
    out += " | ";
    out += note;
  }
  return out;
}

bool Heartbeat::should_print_locked(std::uint64_t done, std::uint64_t total) {
  const bool final_tick = total != 0 && done >= total;
  const bool due =
      !printed_any_ || interval_ <= 0.0 || since_last_.seconds() >= interval_;
  if (!due && !final_tick) return false;
  printed_any_ = true;
  since_last_.reset();
  return true;
}

void Heartbeat::tick(std::uint64_t done, std::uint64_t total, double best) {
  tick(done, total, best, std::string{});
}

void Heartbeat::tick(std::uint64_t done, std::uint64_t total, double best,
                     const std::string& note) {
  std::string line;
  {
    // The enabled test sits inside the lock: enable() may be configuring
    // unit_/interval_ concurrently, and an unlocked early-out would read
    // enabled_ racily (the exact defect the thread-safety build flags).
    util::MutexLock lock{mu_};
    if (!enabled_) return;
    if (!should_print_locked(done, total)) return;
    line = format_progress_line(done, total, unit_, best,
                                since_start_.seconds(), note);
  }
  // obs::log serializes stderr itself; emitting outside mu_ keeps slow IO
  // out of the critical section (and keeps the lock graph a tree).
  log(LogLevel::kInfo, "%s", line.c_str());
}

}  // namespace mcopt::obs
