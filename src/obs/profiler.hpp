// Hierarchical stage profiler.
//
// A ProfileTree is a per-run call tree of named scopes with dual
// accounting: deterministic work (`calls`, `ticks` — pure functions of the
// seed) and wall-clock nanoseconds (`wall_ns` — measurement only, excluded
// from the bit-reproducibility contract exactly like RunMetrics'
// *_seconds fields).  The runners open scopes with MCOPT_PROFILE_SCOPE and
// charge budget ticks into them; the multistart engines merge each
// restart's tree in index order and re-root the result under a
// "multistart" node, so an 8-thread run produces the same deterministic
// tree as the sequential loop.
//
// The tree lives inside RunMetrics (so it rides every existing shard-merge
// path for free); the Recorder owns the open-scope stack.  ProfileScope is
// the RAII handle: construction is a single predicted branch when
// profiling is off, so scopes can stay compiled into the runners —
// bench/metrics_overhead holds the off-path cost to the same <1% gate as
// the rest of the instrumentation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mcopt::obs {

class Recorder;

/// Hardware-counter deltas attributed to a profile scope (obs/perfcount
/// fills them in when a PerfCounterGroup is armed).  Plain additive data:
/// all zero when counters are unavailable, and excluded from the
/// deterministic JSON form exactly like wall_ns — a measurement of the
/// machine, never of the algorithm.
struct PerfCounts {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_refs = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t task_clock_ns = 0;

  [[nodiscard]] bool any() const noexcept {
    return (cycles | instructions | cache_refs | cache_misses |
            branch_misses | task_clock_ns) != 0;
  }
  void add(const PerfCounts& other) noexcept {
    cycles += other.cycles;
    instructions += other.instructions;
    cache_refs += other.cache_refs;
    cache_misses += other.cache_misses;
    branch_misses += other.branch_misses;
    task_clock_ns += other.task_clock_ns;
  }
};

struct ProfileNode {
  std::string name;
  std::int32_t parent = -1;  ///< index into ProfileTree::nodes; -1 = root
  std::uint64_t calls = 0;   ///< times the scope was entered (deterministic)
  std::uint64_t ticks = 0;   ///< budget ticks charged inside (deterministic)
  std::uint64_t wall_ns = 0; ///< wall time inside (nondeterministic)
  PerfCounts perf;           ///< hardware counters (nondeterministic)
};

struct ProfileTree {
  /// Nodes in creation order; a parent always precedes its children, which
  /// is what lets merge() map another tree's indices in one forward pass.
  std::vector<ProfileNode> nodes;

  [[nodiscard]] bool empty() const noexcept { return nodes.empty(); }

  /// Child of `parent` (-1 = root level) named `name`, created on demand.
  std::int32_t find_or_add(std::int32_t parent, const char* name);

  /// Structural merge: same-named nodes under the same parent accumulate.
  /// Deterministic given the other tree's node order; the engines call it
  /// in restart-index order.
  void merge(const ProfileTree& other);

  /// Re-roots the tree: existing root-level nodes become children of a new
  /// node `name` carrying the given deterministic accounting and the sum
  /// of its children's wall time.  Used by the multistart engines.
  void nest_under(const char* name, std::uint64_t calls, std::uint64_t ticks);

  /// Nested JSON array of {"name","calls","ticks"[,"wall_ns"],"children"}.
  /// `include_wall = false` yields the deterministic form compared
  /// byte-for-byte across thread counts.
  [[nodiscard]] std::string to_json(bool include_wall = true) const;
};

/// RAII scope: enters a profile node on the recorder (no-op when the
/// recorder is off or not profiling).  add_ticks() charges deterministic
/// work to the node.
///
/// The constructor, destructor, and add_ticks() are defined inline at the
/// bottom of obs/recorder.hpp (they need the Recorder definition, and
/// recorder.hpp includes this header): when profiling is off each reduces
/// to one inlined predicted branch instead of an out-of-line call, which
/// is what keeps MCOPT_PROFILE_SCOPE compiled into the runners within the
/// bench/metrics_overhead gate.
class ProfileScope {
 public:
  inline ProfileScope(Recorder& recorder, const char* name);
  inline ~ProfileScope();
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  inline void add_ticks(std::uint64_t n);

 private:
  Recorder* recorder_;  // null when profiling is off
};

#define MCOPT_PROFILE_CONCAT_IMPL(a, b) a##b
#define MCOPT_PROFILE_CONCAT(a, b) MCOPT_PROFILE_CONCAT_IMPL(a, b)
/// Opens a named profile scope on `rec` for the rest of the block.
#define MCOPT_PROFILE_SCOPE(rec, name)                                  \
  ::mcopt::obs::ProfileScope MCOPT_PROFILE_CONCAT(mcopt_profile_scope_, \
                                                  __LINE__) {           \
    (rec), (name)                                                       \
  }

}  // namespace mcopt::obs
