// Aggregated metrics registry with Prometheus and JSON exporters.
//
// RunMetrics is the per-run shard that rides the engines' index-ordered
// merges; MetricsRegistry is the *presentation* layer a driver populates
// once at the end from the merged RunMetrics (populate_from_run) plus any
// driver-level extras (counter_add / gauge_max / histogram_merge).  It
// flattens everything into named metric families:
//
//   counter    u64, merges by sum       (deterministic by default)
//   gauge      double, merges by max    (wall clocks, peaks)
//   histogram  LogHistogram, bucket sum (commutative, order-invariant)
//
// Determinism contract: metrics observing the scheduler or the clock are
// registered with `deterministic = false` and both exporters can filter
// them (`deterministic_only = true`), which is what the thread-count
// invariance tests compare byte-for-byte — the same carve-out the trace
// layer makes for the `worker` stamp.  Keys live in a sorted std::map, so
// export order never depends on insertion order.
//
// Prometheus naming: per-stage samples encode the label in the key
// (`mcopt_stage_proposals_total{stage="3"}`); families sharing a base name
// sort adjacently, so HELP/TYPE headers are emitted once per family as the
// text exposition format requires.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/histogram.hpp"

namespace mcopt::obs {

struct RunMetrics;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

struct Metric {
  MetricKind kind = MetricKind::kCounter;
  std::string help;
  bool deterministic = true;
  std::uint64_t value = 0;    ///< counters
  double gauge = 0.0;         ///< gauges
  LogHistogram hist;          ///< histograms
};

class MetricsRegistry {
 public:
  /// Adds `v` to counter `name`, creating it on first use.  `name` may
  /// carry a Prometheus label suffix: `family{label="x"}`.
  void counter_add(const std::string& name, const char* help,
                   std::uint64_t v, bool deterministic = true);

  /// Raises gauge `name` to `v` if larger (max-merge semantics).
  void gauge_max(const std::string& name, const char* help, double v,
                 bool deterministic = true);

  /// Merges `h` into histogram `name` (commutative bucket sums).
  void histogram_merge(const std::string& name, const char* help,
                       const LogHistogram& h, bool deterministic = true);

  /// Folds another registry in (sum / max / bucket-sum by kind).
  void merge(const MetricsRegistry& other);

  /// Flattens a merged RunMetrics into the standard mcopt_* families.
  void populate_from_run(const RunMetrics& m);

  [[nodiscard]] bool empty() const noexcept { return metrics_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return metrics_.size(); }
  [[nodiscard]] const Metric* find(const std::string& name) const;

  /// Prometheus text exposition format (one HELP/TYPE header per family).
  /// `deterministic_only` drops metrics registered as nondeterministic —
  /// the form compared byte-for-byte across thread counts.
  [[nodiscard]] std::string to_prometheus(bool deterministic_only = false) const;

  /// Stable JSON object {"metrics": {name: {...}, ...}} in sorted key
  /// order, same `deterministic_only` filter as to_prometheus().
  [[nodiscard]] std::string to_json(bool deterministic_only = false) const;

 private:
  Metric& slot(const std::string& name, MetricKind kind, const char* help,
               bool deterministic);

  std::map<std::string, Metric> metrics_;
};

}  // namespace mcopt::obs
