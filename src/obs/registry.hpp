// Aggregated metrics registry with Prometheus and JSON exporters.
//
// RunMetrics is the per-run shard that rides the engines' index-ordered
// merges; MetricsRegistry is the *presentation* layer a driver populates
// once at the end from the merged RunMetrics (populate_from_run) plus any
// driver-level extras (counter_add / gauge_max / histogram_merge).  It
// flattens everything into named metric families:
//
//   counter    u64, merges by sum       (deterministic by default)
//   gauge      double, merges by max    (wall clocks, peaks)
//   histogram  LogHistogram, bucket sum (commutative, order-invariant)
//
// Determinism contract: metrics observing the scheduler or the clock are
// registered with `deterministic = false` and both exporters can filter
// them (`deterministic_only = true`), which is what the thread-count
// invariance tests compare byte-for-byte — the same carve-out the trace
// layer makes for the `worker` stamp.  Keys live in a sorted std::map, so
// export order never depends on insertion order.
//
// Prometheus naming: per-stage samples encode the label in the key
// (`mcopt_stage_proposals_total{stage="3"}`); families sharing a base name
// sort adjacently, so HELP/TYPE headers are emitted once per family as the
// text exposition format requires.
//
// Thread-safety: a registry may be populated and merged from concurrent
// jobs (the shape the mcopt_serve job queue needs).  All state is guarded
// by one util::Mutex; the public methods lock once and delegate to
// REQUIRES-annotated *_locked() helpers, so the locking structure is
// visible in the signatures and enforced by the thread-safety build.
// Determinism is unaffected: counters sum, gauges max, and histogram
// buckets add commutatively, so any interleaving of whole operations
// yields the same exports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <string>

#include "obs/histogram.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mcopt::obs {

struct RunMetrics;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

struct Metric {
  MetricKind kind = MetricKind::kCounter;
  std::string help;
  bool deterministic = true;
  std::uint64_t value = 0;    ///< counters
  /// Gauges max-merge, so the empty value is the max identity — not 0.0,
  /// which would silently clamp negative-valued gauges (autocorrelation
  /// can be negative).  A gauge only exists once a setter ran, so the
  /// identity itself is never exported.
  double gauge = std::numeric_limits<double>::lowest();  ///< gauges
  LogHistogram hist;          ///< histograms
};

class MetricsRegistry {
 public:
  /// Adds `v` to counter `name`, creating it on first use.  `name` may
  /// carry a Prometheus label suffix: `family{label="x"}`.
  void counter_add(const std::string& name, const char* help,
                   std::uint64_t v, bool deterministic = true) EXCLUDES(mu_);

  /// Raises gauge `name` to `v` if larger (max-merge semantics).
  void gauge_max(const std::string& name, const char* help, double v,
                 bool deterministic = true) EXCLUDES(mu_);

  /// Merges `h` into histogram `name` (commutative bucket sums).
  void histogram_merge(const std::string& name, const char* help,
                       const LogHistogram& h, bool deterministic = true)
      EXCLUDES(mu_);

  /// Folds another registry in (sum / max / bucket-sum by kind).  Snapshots
  /// `other` under its own lock first, then folds under ours — two
  /// registries merging each other concurrently cannot deadlock because
  /// the locks are never held together.
  void merge(const MetricsRegistry& other) EXCLUDES(mu_);

  /// Flattens a merged RunMetrics into the standard mcopt_* families.
  /// One lock acquisition for the whole flatten, not one per family.
  void populate_from_run(const RunMetrics& m) EXCLUDES(mu_);

  [[nodiscard]] bool empty() const EXCLUDES(mu_) {
    util::MutexLock lock{mu_};
    return metrics_.empty();
  }
  [[nodiscard]] std::size_t size() const EXCLUDES(mu_) {
    util::MutexLock lock{mu_};
    return metrics_.size();
  }
  /// Looks up a metric; the returned pointer stays valid (map nodes are
  /// stable) but its fields are only stable once concurrent writers are
  /// done — read results after joining, as the tests and drivers do.
  [[nodiscard]] const Metric* find(const std::string& name) const
      EXCLUDES(mu_);

  /// Prometheus text exposition format (one HELP/TYPE header per family).
  /// `deterministic_only` drops metrics registered as nondeterministic —
  /// the form compared byte-for-byte across thread counts.
  [[nodiscard]] std::string to_prometheus(bool deterministic_only = false) const
      EXCLUDES(mu_);

  /// Stable JSON object {"metrics": {name: {...}, ...}} in sorted key
  /// order, same `deterministic_only` filter as to_prometheus().
  [[nodiscard]] std::string to_json(bool deterministic_only = false) const
      EXCLUDES(mu_);

 private:
  Metric& slot_locked(const std::string& name, MetricKind kind,
                      const char* help, bool deterministic) REQUIRES(mu_);
  void counter_add_locked(const std::string& name, const char* help,
                          std::uint64_t v, bool deterministic) REQUIRES(mu_);
  void gauge_max_locked(const std::string& name, const char* help, double v,
                        bool deterministic) REQUIRES(mu_);
  void histogram_merge_locked(const std::string& name, const char* help,
                              const LogHistogram& h, bool deterministic)
      REQUIRES(mu_);

  mutable util::Mutex mu_;
  std::map<std::string, Metric> metrics_ GUARDED_BY(mu_);
};

}  // namespace mcopt::obs
