#include "obs/flight.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstddef>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/event.hpp"

namespace mcopt::obs {

namespace {

/// First crasher wins; a cascading failure (e.g. SIGSEGV inside the
/// SIGABRT dump) must not re-enter the dump.  atomic_flag operations are
/// async-signal-safe.
// Async-signal-safe reentry guard; a mutex cannot be taken in a handler.
std::atomic_flag g_crash_dump_done =  // mcopt-lint: allow(raw-atomic)
    ATOMIC_FLAG_INIT;

/// Handlers already installed?  Guards double-installation only; written
/// from install_crash_handlers() on the main thread.
// Install-once exchange; guards no other state.
std::atomic<bool>  // mcopt-lint: allow(raw-atomic)
    g_handlers_installed{false};

std::terminate_handler g_prev_terminate = nullptr;

void crash_breadcrumb(const char* text) noexcept {
  // The crash path cannot take obs::log's mutex; a raw write(2) of a
  // static string is the async-signal-safe substitute.
  const std::size_t len = std::strlen(text);
  // Best-effort: nothing to do if stderr is gone mid-crash.
  static_cast<void>(::write(STDERR_FILENO, text, len));
}

void dump_once() noexcept {
  if (g_crash_dump_done.test_and_set()) return;
  const std::size_t lines = FlightRecorder::instance().dump_now();
  if (lines > 0) {
    crash_breadcrumb("[mcopt] flight recorder dumped event tail\n");
  }
}

void crash_signal_handler(int sig) {
  dump_once();
  // Restore the default disposition and re-raise so the process still
  // dies the way the signal intended (core dump, 128+sig exit status).
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

[[noreturn]] void flight_terminate_handler() {
  dump_once();
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::arm(std::size_t capacity, std::string dump_path) {
  util::MutexLock lock{mu_};
  ring_ = std::make_unique<RingBufferSink>(capacity == 0 ? 1 : capacity);
  path_ = std::move(dump_path);
}

bool FlightRecorder::armed() const {
  util::MutexLock lock{mu_};
  return ring_ != nullptr;
}

TraceSink* FlightRecorder::sink() const {
  util::MutexLock lock{mu_};
  return ring_.get();
}

const RingBufferSink* FlightRecorder::ring() const {
  util::MutexLock lock{mu_};
  return ring_.get();
}

std::string FlightRecorder::dump_path() const {
  util::MutexLock lock{mu_};
  return path_;
}

void FlightRecorder::install_crash_handlers() {
  if (g_handlers_installed.exchange(true)) return;
  // Abnormal-death signals whose default disposition kills the process.
  // SIGTERM is included deliberately: an operator/scheduler kill should
  // leave the tail behind too.
  for (const int sig :
       {SIGABRT, SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGTERM}) {
    std::signal(sig, &crash_signal_handler);
  }
  g_prev_terminate = std::set_terminate(&flight_terminate_handler);
}

// NO_THREAD_SAFETY_ANALYSIS: crash-path escape hatch.  arm() happens
// before install_crash_handlers() and never again after, so ring_/path_
// are immutable by the time any handler can run; taking mu_ here could
// deadlock against the thread that crashed while holding it.
std::size_t FlightRecorder::dump_now() const noexcept
    NO_THREAD_SAFETY_ANALYSIS {
  const RingBufferSink* ring = ring_.get();
  if (ring == nullptr || path_.empty()) return 0;
  const int fd =
      ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return 0;
  const std::size_t lines = ring->crash_dump(fd);
  static_cast<void>(::close(fd));
  return lines;
}

std::size_t FlightRecorder::dump_clean() const {
  std::vector<Event> events;
  std::string path;
  {
    util::MutexLock lock{mu_};
    if (ring_ == nullptr || path_.empty()) return 0;
    events = ring_->snapshot();
    path = path_;
  }
  std::ofstream out{path, std::ios::trunc};
  if (!out) return 0;
  std::string text;
  for (const Event& event : events) append_jsonl(event, text);
  out << text;
  return events.size();
}

}  // namespace mcopt::obs
