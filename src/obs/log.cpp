#include "obs/log.hpp"

#include <atomic>
#include <cstdio>

namespace mcopt::obs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void vlog(LogLevel level, const char* fmt, std::va_list args) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) {
    return;
  }
  // The one sanctioned stderr write; everything else routes through here.
  std::vfprintf(stderr, fmt, args);  // mcopt-lint: allow(raw-stderr)
  std::fputc('\n', stderr);  // mcopt-lint: allow(raw-stderr)
}

void log(LogLevel level, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(level, fmt, args);
  va_end(args);
}

}  // namespace mcopt::obs
