#include "obs/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/sync.hpp"

namespace mcopt::obs {

namespace {

// The level gate is a relaxed atomic, not a mutex: it sits on the hot
// path of every dropped message and a torn read is impossible for an int.
std::atomic<int> g_level{  // mcopt-lint: allow(raw-atomic) -- level gate
    static_cast<int>(LogLevel::kInfo)};

// Serializes the (body, '\n') write pair below.  vfprintf alone is
// atomic per call on POSIX stdio, but the trailing newline is a second
// call — without the mutex two threads' lines can interleave as
// "body1body2\n\n".  stderr itself is process-global state this mutex
// guards by convention; there is no field to hang a GUARDED_BY on.
util::Mutex g_stderr_mu;

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool apply_env_log_level() {
  const char* value = std::getenv("MCOPT_LOG_LEVEL");
  if (value == nullptr || *value == '\0') return false;
  if (std::strcmp(value, "error") == 0 || std::strcmp(value, "0") == 0) {
    set_log_level(LogLevel::kError);
  } else if (std::strcmp(value, "info") == 0 || std::strcmp(value, "1") == 0) {
    set_log_level(LogLevel::kInfo);
  } else if (std::strcmp(value, "debug") == 0 || std::strcmp(value, "2") == 0) {
    set_log_level(LogLevel::kDebug);
  } else {
    return false;
  }
  return true;
}

void vlog(LogLevel level, const char* fmt, std::va_list args) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) {
    return;
  }
  // The one sanctioned stderr write; everything else routes through here.
  util::MutexLock lock{g_stderr_mu};
  std::vfprintf(stderr, fmt, args);  // mcopt-lint: allow(raw-stderr)
  std::fputc('\n', stderr);  // mcopt-lint: allow(raw-stderr)
}

void log(LogLevel level, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(level, fmt, args);
  va_end(args);
}

}  // namespace mcopt::obs
