#include "obs/histogram.hpp"

#include <bit>
#include <cstdio>

namespace mcopt::obs {

std::uint64_t LogHistogram::bucket_bound(std::size_t i) noexcept {
  if (i + 1 >= kNumBuckets) return 0;  // overflow bucket: no finite bound
  return std::uint64_t{1} << i;
}

std::size_t LogHistogram::bucket_index(double value) noexcept {
  if (value < 1.0) return 0;  // negatives and [0,1) share bucket 0
  // Integer bit-scan keeps the boundaries exact: values in [2^(k-1), 2^k)
  // have floor(value) with bit width k and land in bucket k.
  const double capped =
      value >= 9.007199254740992e15 ? 9.007199254740992e15 : value;
  const auto floored = static_cast<std::uint64_t>(capped);
  const auto width = static_cast<std::size_t>(std::bit_width(floored));
  return width < kNumBuckets - 1 ? width : kNumBuckets - 1;
}

void LogHistogram::record(double value) noexcept {
  ++buckets_[bucket_index(value)];
  ++count_;
  sum_ += value < 0.0 ? 0.0 : value;
}

void LogHistogram::merge(const LogHistogram& other) noexcept {
  for (std::size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

std::uint64_t LogHistogram::cumulative(std::size_t i) const noexcept {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b < kNumBuckets; ++b) total += buckets_[b];
  return total;
}

void LogHistogram::append_json(std::string& out) const {
  char buf[64];
  std::size_t last = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] != 0) last = i;
  }
  std::snprintf(buf, sizeof buf, "{\"count\": %llu, \"sum\": %.17g, ",
                static_cast<unsigned long long>(count_), sum_);
  out += buf;
  out += "\"buckets\": [";
  std::uint64_t running = 0;
  for (std::size_t i = 0; i <= last && i + 1 < kNumBuckets; ++i) {
    if (count_ == 0) break;
    running += buckets_[i];
    std::snprintf(buf, sizeof buf, "{\"le\": %llu, \"count\": %llu}, ",
                  static_cast<unsigned long long>(bucket_bound(i)),
                  static_cast<unsigned long long>(running));
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "{\"le\": \"+Inf\", \"count\": %llu}]}",
                static_cast<unsigned long long>(count_));
  out += buf;
}

}  // namespace mcopt::obs
