#include "obs/metrics.hpp"

#include <cstdio>

namespace mcopt::obs {

namespace {

void append_u64(std::uint64_t value, std::string& out) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "%llu",
                              static_cast<unsigned long long>(value));
  out.append(buf, static_cast<std::size_t>(n > 0 ? n : 0));
}

void append_double(double value, std::string& out) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof buf, "%.17g", value);
  out.append(buf, static_cast<std::size_t>(n > 0 ? n : 0));
}

void append_field(const char* key, std::uint64_t value, const char* indent,
                  std::string& out, bool comma = true) {
  out += indent;
  out += "\"";
  out += key;
  out += "\": ";
  append_u64(value, out);
  out += comma ? ",\n" : "\n";
}

void append_field(const char* key, double value, const char* indent,
                  std::string& out, bool comma = true) {
  out += indent;
  out += "\"";
  out += key;
  out += "\": ";
  append_double(value, out);
  out += comma ? ",\n" : "\n";
}

}  // namespace

StageMetrics& StageMetrics::operator+=(const StageMetrics& other) noexcept {
  proposals += other.proposals;
  accepts += other.accepts;
  uphill_accepts += other.uphill_accepts;
  rejects += other.rejects;
  downhill_proposals += other.downhill_proposals;
  sideways_proposals += other.sideways_proposals;
  uphill_proposals += other.uphill_proposals;
  new_bests += other.new_bests;
  patience_fires += other.patience_fires;
  ticks += other.ticks;
  wall_seconds += other.wall_seconds;
  return *this;
}

void RunMetrics::merge(const RunMetrics& other) {
  if (!other.collected) return;
  collected = true;
  restarts += other.restarts;
  new_bests += other.new_bests;
  patience_resets += other.patience_resets;
  trace_events += other.trace_events;
  invariant_checks += other.invariant_checks;
  invariant_seconds += other.invariant_seconds;
  wall_seconds += other.wall_seconds;
  worker_steals += other.worker_steals;
  // Peak depth is a max, not a sum: shards observe the same shared queue.
  if (other.queue_peak > queue_peak) queue_peak = other.queue_peak;
  uphill_delta_proposed.merge(other.uphill_delta_proposed);
  uphill_delta_accepted.merge(other.uphill_delta_accepted);
  profile.merge(other.profile);
  if (stages.size() < other.stages.size()) stages.resize(other.stages.size());
  for (std::size_t i = 0; i < other.stages.size(); ++i) {
    stages[i] += other.stages[i];
  }
  if (observables.size() < other.observables.size()) {
    observables.resize(other.observables.size());
  }
  for (std::size_t i = 0; i < other.observables.size(); ++i) {
    observables[i].merge(other.observables[i]);
  }
}

std::string RunMetrics::to_json() const {
  std::string out;
  out += "{\n";
  out += "  \"collected\": ";
  out += collected ? "true" : "false";
  out += ",\n";
  append_field("restarts", restarts, "  ", out);
  append_field("new_bests", new_bests, "  ", out);
  append_field("patience_resets", patience_resets, "  ", out);
  append_field("trace_events", trace_events, "  ", out);
  append_field("invariant_checks", invariant_checks, "  ", out);
  append_field("invariant_seconds", invariant_seconds, "  ", out);
  append_field("worker_steals", worker_steals, "  ", out);
  append_field("queue_peak", queue_peak, "  ", out);
  append_field("wall_seconds", wall_seconds, "  ", out);
  out += "  \"uphill_delta_proposed\": ";
  uphill_delta_proposed.append_json(out);
  out += ",\n  \"uphill_delta_accepted\": ";
  uphill_delta_accepted.append_json(out);
  out += ",\n";
  out += "  \"stages\": [";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageMetrics& s = stages[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n";
    append_field("stage", static_cast<std::uint64_t>(i), "      ", out);
    append_field("proposals", s.proposals, "      ", out);
    append_field("accepts", s.accepts, "      ", out);
    append_field("uphill_accepts", s.uphill_accepts, "      ", out);
    append_field("rejects", s.rejects, "      ", out);
    append_field("downhill_proposals", s.downhill_proposals, "      ", out);
    append_field("sideways_proposals", s.sideways_proposals, "      ", out);
    append_field("uphill_proposals", s.uphill_proposals, "      ", out);
    append_field("new_bests", s.new_bests, "      ", out);
    append_field("patience_fires", s.patience_fires, "      ", out);
    append_field("ticks", s.ticks, "      ", out);
    append_field("acceptance_rate", s.acceptance_rate(), "      ", out);
    append_field("uphill_rate", s.uphill_rate(), "      ", out);
    append_field("wall_seconds", s.wall_seconds, "      ", out, false);
    out += "    }";
  }
  out += stages.empty() ? "],\n" : "\n  ],\n";
  // Observables export only merge-stable values: exact counters and the
  // doubles derived from them at this call.  Transient detector state
  // (ring, window sums) depends on which shard last wrote it and must
  // never leak into the JSON, or shard grouping would become observable.
  out += "  \"observables\": [";
  for (std::size_t i = 0; i < observables.size(); ++i) {
    const StageObservables& o = observables[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n";
    append_field("stage", static_cast<std::uint64_t>(i), "      ", out);
    append_field("samples", o.samples, "      ", out);
    append_field("cost_mean", o.mean(), "      ", out);
    append_field("cost_variance", o.variance(), "      ", out);
    append_field("temperature", o.temperature, "      ", out);
    append_field("specific_heat", o.specific_heat(), "      ", out);
    out += "      \"autocorrelation\": [";
    for (std::size_t lag = 1; lag <= StageObservables::kMaxLag; ++lag) {
      if (lag > 1) out += ", ";
      append_double(o.autocorrelation(lag), out);
    }
    out += "],\n";
    append_field("windows", o.windows, "      ", out);
    append_field("equilibrated_runs", o.equilibrated_runs, "      ", out);
    append_field("first_equilibrated_sample", o.first_equilibrated_sample,
                 "      ", out, false);
    out += "    }";
  }
  out += observables.empty() ? "],\n" : "\n  ],\n";
  out += "  \"profile\": ";
  out += profile.to_json();
  out += "\n}\n";
  return out;
}

std::string RunMetrics::summary() const {
  std::uint64_t proposals = 0;
  std::uint64_t accepts = 0;
  for (const StageMetrics& s : stages) {
    proposals += s.proposals;
    accepts += s.accepts;
  }
  std::string out = "metrics: ";
  if (!collected) {
    out += "not collected";
    return out;
  }
  out += "restarts=";
  append_u64(restarts, out);
  out += " stages=";
  append_u64(static_cast<std::uint64_t>(stages.size()), out);
  out += " proposals=";
  append_u64(proposals, out);
  out += " accepts=";
  append_u64(accepts, out);
  out += " new_bests=";
  append_u64(new_bests, out);
  out += " patience_resets=";
  append_u64(patience_resets, out);
  out += " trace_events=";
  append_u64(trace_events, out);
  char buf[64];
  const int n = std::snprintf(buf, sizeof buf, " invariant_s=%.3f wall_s=%.3f",
                              invariant_seconds, wall_seconds);
  out.append(buf, static_cast<std::size_t>(n > 0 ? n : 0));
  return out;
}

}  // namespace mcopt::obs
