#include "obs/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mcopt::obs {

namespace {

/// Flush threshold for the JSONL writer; large enough that the file write
/// cost amortizes, small enough that a crashed run still leaves a useful
/// trace prefix on disk.
constexpr std::size_t kJsonlBufferBytes = 1 << 16;

void append_double(double value, std::string& out) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof buf, "%.17g", value);
  out.append(buf, static_cast<std::size_t>(n > 0 ? n : 0));
}

void append_u64(std::uint64_t value, std::string& out) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "%llu",
                              static_cast<unsigned long long>(value));
  out.append(buf, static_cast<std::size_t>(n > 0 ? n : 0));
}

}  // namespace

const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kStageBegin: return "stage_begin";
    case EventKind::kProposal: return "proposal_sampled";
    case EventKind::kAccept: return "accept";
    case EventKind::kReject: return "reject";
    case EventKind::kRestartBegin: return "restart_begin";
    case EventKind::kNewBest: return "new_best";
    case EventKind::kWorkerSteal: return "worker_steal";
  }
  return "unknown";
}

const char* stage_reason_name(StageReason reason) noexcept {
  switch (reason) {
    case StageReason::kNone: return "none";
    case StageReason::kStart: return "start";
    case StageReason::kSlice: return "slice";
    case StageReason::kPatience: return "patience";
    case StageReason::kEquilibrium: return "equilibrium";
  }
  return "unknown";
}

void append_jsonl(const Event& event, std::string& out) {
  out += "{\"event\":\"";
  out += event_kind_name(event.kind);
  out += "\",\"run\":";
  append_u64(event.run, out);
  out += ",\"restart\":";
  append_u64(event.restart, out);
  out += ",\"worker\":";
  append_u64(event.worker, out);
  out += ",\"tick\":";
  append_u64(event.tick, out);
  out += ",\"stage\":";
  append_u64(event.stage, out);
  out += ",\"cost\":";
  append_double(event.cost, out);
  out += ",\"best\":";
  append_double(event.best, out);
  if (event.kind == EventKind::kStageBegin) {
    out += ",\"reason\":\"";
    out += stage_reason_name(event.reason);
    out += "\"";
  }
  out += "}\n";
}

std::size_t format_jsonl(const Event& event, char* buf,
                         std::size_t cap) noexcept {
  // One snprintf mirroring append_jsonl byte for byte (a unit test pins the
  // two together).  snprintf is not formally async-signal-safe, but this
  // numeric subset allocates nothing on common libcs — the accepted
  // best-effort trade for a crash-path dump.
  int n;
  if (event.kind == EventKind::kStageBegin) {
    n = std::snprintf(
        buf, cap,
        "{\"event\":\"%s\",\"run\":%llu,\"restart\":%llu,\"worker\":%llu,"
        "\"tick\":%llu,\"stage\":%llu,\"cost\":%.17g,\"best\":%.17g,"
        "\"reason\":\"%s\"}\n",
        event_kind_name(event.kind),
        static_cast<unsigned long long>(event.run),
        static_cast<unsigned long long>(event.restart),
        static_cast<unsigned long long>(event.worker),
        static_cast<unsigned long long>(event.tick),
        static_cast<unsigned long long>(event.stage), event.cost, event.best,
        stage_reason_name(event.reason));
  } else {
    n = std::snprintf(
        buf, cap,
        "{\"event\":\"%s\",\"run\":%llu,\"restart\":%llu,\"worker\":%llu,"
        "\"tick\":%llu,\"stage\":%llu,\"cost\":%.17g,\"best\":%.17g}\n",
        event_kind_name(event.kind),
        static_cast<unsigned long long>(event.run),
        static_cast<unsigned long long>(event.restart),
        static_cast<unsigned long long>(event.worker),
        static_cast<unsigned long long>(event.tick),
        static_cast<unsigned long long>(event.stage), event.cost, event.best);
  }
  if (n <= 0 || static_cast<std::size_t>(n) >= cap) return 0;
  return static_cast<std::size_t>(n);
}

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("RingBufferSink: capacity must be >= 1");
  }
  util::MutexLock lock{mu_};
  buffer_.reserve(capacity);
}

void RingBufferSink::write(const Event& event) {
  util::MutexLock lock{mu_};
  if (!full_) {
    buffer_.push_back(event);
    if (buffer_.size() == capacity_) full_ = true;  // next_ stays 0: oldest
    return;
  }
  buffer_[next_] = event;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<Event> RingBufferSink::snapshot_locked() const {
  std::vector<Event> out;
  out.reserve(buffer_.size());
  if (!full_) {
    out.assign(buffer_.begin(), buffer_.end());
    return out;
  }
  for (std::size_t i = 0; i < capacity_; ++i) {
    out.push_back(buffer_[(next_ + i) % capacity_]);
  }
  return out;
}

std::vector<Event> RingBufferSink::snapshot() const {
  util::MutexLock lock{mu_};
  return snapshot_locked();
}

// NO_THREAD_SAFETY_ANALYSIS: this is the documented crash-path escape
// hatch — taking mu_ inside a signal handler could deadlock on the very
// thread that crashed mid-write, so the ring is read unlocked.  The
// constructor's reserve() pins buffer_'s data pointer for the object's
// lifetime (size never exceeds capacity), and every index is clamped, so
// the worst concurrent outcome is a torn line, not an out-of-bounds read.
std::size_t RingBufferSink::crash_dump(int fd) const noexcept
    NO_THREAD_SAFETY_ANALYSIS {
  const std::size_t count = std::min(buffer_.size(), capacity_);
  const std::size_t start = full_ && capacity_ != 0 ? next_ % capacity_ : 0;
  std::size_t lines = 0;
  char line[512];
  for (std::size_t i = 0; i < count; ++i) {
    const Event& event = buffer_[(start + i) % capacity_];
    const std::size_t len = format_jsonl(event, line, sizeof line);
    if (len == 0) continue;
    if (::write(fd, line, len) != static_cast<ssize_t>(len)) break;
    ++lines;
  }
  return lines;
}

std::size_t RingBufferSink::size() const {
  util::MutexLock lock{mu_};
  return buffer_.size();
}

std::uint64_t RingBufferSink::dropped() const {
  util::MutexLock lock{mu_};
  return dropped_;
}

JsonlFileSink::JsonlFileSink(const std::string& path)
    : file_(path), out_(&file_) {
  if (!file_) {
    throw std::invalid_argument("JsonlFileSink: cannot open " + path);
  }
  util::MutexLock lock{mu_};
  buffer_.reserve(kJsonlBufferBytes + 256);
}

JsonlFileSink::JsonlFileSink(std::ostream& out) : out_(&out) {
  util::MutexLock lock{mu_};
  buffer_.reserve(kJsonlBufferBytes + 256);
}

JsonlFileSink::~JsonlFileSink() {
  util::MutexLock lock{mu_};
  flush_locked();
}

void JsonlFileSink::write(const Event& event) {
  util::MutexLock lock{mu_};
  append_jsonl(event, buffer_);
  ++written_;
  if (buffer_.size() >= kJsonlBufferBytes) flush_locked();
}

void JsonlFileSink::flush() {
  util::MutexLock lock{mu_};
  flush_locked();
}

std::uint64_t JsonlFileSink::written() const {
  util::MutexLock lock{mu_};
  return written_;
}

void JsonlFileSink::flush_locked() {
  if (!buffer_.empty()) {
    out_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
  out_->flush();
}

}  // namespace mcopt::obs
