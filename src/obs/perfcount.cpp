#include "obs/perfcount.hpp"

#include <cerrno>
#include <cstddef>
#include <cstring>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define MCOPT_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define MCOPT_HAVE_PERF_EVENT 0
#endif

namespace mcopt::obs {

namespace {

/// Errno spelled for humans; the common perf refusals get their POSIX
/// names so tests and logs can match on them.
const char* errno_name(int err) {
  switch (err) {
    case EACCES: return "EACCES";
    case EPERM: return "EPERM";
    case ENOSYS: return "ENOSYS";
    case ENOENT: return "ENOENT";
    case ENODEV: return "ENODEV";
    case EOPNOTSUPP: return "EOPNOTSUPP";
    case EINVAL: return "EINVAL";
    case EMFILE: return "EMFILE";
    case EBUSY: return "EBUSY";
    default: return std::strerror(err);
  }
}

#if MCOPT_HAVE_PERF_EVENT

/// Self-monitoring, user-space-only counters: exclude_kernel/_hv is what
/// perf_event_paranoid=2 (the common container default) still permits.
class SyscallPerfBackend final : public PerfBackend {
 public:
  int open_counter(PerfCounter which) override {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof attr);
    attr.size = sizeof attr;
    switch (which) {
      case PerfCounter::kCycles:
        attr.type = PERF_TYPE_HARDWARE;
        attr.config = PERF_COUNT_HW_CPU_CYCLES;
        break;
      case PerfCounter::kInstructions:
        attr.type = PERF_TYPE_HARDWARE;
        attr.config = PERF_COUNT_HW_INSTRUCTIONS;
        break;
      case PerfCounter::kCacheReferences:
        attr.type = PERF_TYPE_HARDWARE;
        attr.config = PERF_COUNT_HW_CACHE_REFERENCES;
        break;
      case PerfCounter::kCacheMisses:
        attr.type = PERF_TYPE_HARDWARE;
        attr.config = PERF_COUNT_HW_CACHE_MISSES;
        break;
      case PerfCounter::kBranchMisses:
        attr.type = PERF_TYPE_HARDWARE;
        attr.config = PERF_COUNT_HW_BRANCH_MISSES;
        break;
      case PerfCounter::kTaskClock:
        attr.type = PERF_TYPE_SOFTWARE;
        attr.config = PERF_COUNT_SW_TASK_CLOCK;
        break;
    }
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format =
        PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
    const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                            /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0UL);
    if (fd < 0) return errno > 0 ? -errno : -ENOSYS;
    return static_cast<int>(fd);
  }

  bool read_counter(int fd, PerfReading* out) override {
    std::uint64_t buf[3] = {0, 0, 0};
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n != static_cast<ssize_t>(sizeof buf)) return false;
    out->value = buf[0];
    out->time_enabled = buf[1];
    out->time_running = buf[2];
    return true;
  }

  void close_counter(int fd) override { ::close(fd); }
};

#else  // !MCOPT_HAVE_PERF_EVENT

/// Non-Linux stub: every open is ENOSYS, so the group degrades exactly
/// like a container that denies the syscall.
class SyscallPerfBackend final : public PerfBackend {
 public:
  int open_counter(PerfCounter /*which*/) override { return -ENOSYS; }
  bool read_counter(int /*fd*/, PerfReading* /*out*/) override {
    return false;
  }
  void close_counter(int /*fd*/) override {}
};

#endif  // MCOPT_HAVE_PERF_EVENT

/// Multiplex scaling: value * enabled / running.  A counter that never ran
/// contributes 0; one that ran the whole time passes through exactly.
std::uint64_t scaled_value(const PerfReading& r) {
  if (r.time_running == 0) return r.time_enabled == 0 ? r.value : 0;
  if (r.time_running >= r.time_enabled) return r.value;
  const double scale = static_cast<double>(r.time_enabled) /
                       static_cast<double>(r.time_running);
  return static_cast<std::uint64_t>(static_cast<double>(r.value) * scale);
}

void assign_count(PerfCounter which, std::uint64_t value, PerfCounts* out) {
  switch (which) {
    case PerfCounter::kCycles: out->cycles = value; break;
    case PerfCounter::kInstructions: out->instructions = value; break;
    case PerfCounter::kCacheReferences: out->cache_refs = value; break;
    case PerfCounter::kCacheMisses: out->cache_misses = value; break;
    case PerfCounter::kBranchMisses: out->branch_misses = value; break;
    case PerfCounter::kTaskClock: out->task_clock_ns = value; break;
  }
}

std::uint64_t saturating_sub(std::uint64_t end, std::uint64_t begin) {
  return end >= begin ? end - begin : 0;
}

}  // namespace

const char* perf_counter_name(PerfCounter which) noexcept {
  switch (which) {
    case PerfCounter::kCycles: return "cycles";
    case PerfCounter::kInstructions: return "instructions";
    case PerfCounter::kCacheReferences: return "cache-references";
    case PerfCounter::kCacheMisses: return "cache-misses";
    case PerfCounter::kBranchMisses: return "branch-misses";
    case PerfCounter::kTaskClock: return "task-clock";
  }
  return "cycles";
}

std::vector<PerfCounter> all_perf_counters() {
  return {PerfCounter::kCycles,          PerfCounter::kInstructions,
          PerfCounter::kCacheReferences, PerfCounter::kCacheMisses,
          PerfCounter::kBranchMisses,    PerfCounter::kTaskClock};
}

std::optional<std::vector<PerfCounter>> parse_perf_counters(
    const std::string& list, std::string* error) {
  std::vector<PerfCounter> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string token = list.substr(start, comma - start);
    bool known = false;
    for (const PerfCounter which : all_perf_counters()) {
      if (token == perf_counter_name(which)) {
        out.push_back(which);
        known = true;
        break;
      }
    }
    if (!known) {
      if (error != nullptr) {
        *error = token.empty() ? std::string{"empty counter name"}
                               : "unknown counter '" + token + "'";
        *error += " (known: ";
        bool first = true;
        for (const PerfCounter which : all_perf_counters()) {
          if (!first) *error += ", ";
          first = false;
          *error += perf_counter_name(which);
        }
        *error += ")";
      }
      return std::nullopt;
    }
    start = comma + 1;
  }
  return out;
}

PerfBackend& system_perf_backend() noexcept {
  // Intentionally leaked: groups held in objects of static storage
  // duration (the bench drivers' globals) may destruct after a
  // function-local static backend would, and the backend is stateless,
  // so never running its destructor is the safe lifetime.
  static SyscallPerfBackend* backend = new SyscallPerfBackend;
  return *backend;
}

PerfCounterGroup::PerfCounterGroup(const std::vector<PerfCounter>& counters,
                                   PerfBackend* backend)
    : backend_(backend != nullptr ? backend : &system_perf_backend()) {
  int first_error = 0;
  for (const PerfCounter which : counters) {
    const int fd = backend_->open_counter(which);
    if (fd >= 0) {
      fds_.push_back(OpenCounter{which, fd});
    } else if (first_error == 0) {
      first_error = -fd;
    }
  }
  if (fds_.empty()) {
    reason_ = "perf_event_open failed: ";
    reason_ += errno_name(first_error == 0 ? ENOSYS : first_error);
    reason_ +=
        " (self-monitoring user-space counters need "
        "/proc/sys/kernel/perf_event_paranoid <= 2 and a kernel PMU)";
  }
}

PerfCounterGroup::~PerfCounterGroup() {
  for (const OpenCounter& counter : fds_) {
    backend_->close_counter(counter.fd);
  }
}

std::vector<PerfCounter> PerfCounterGroup::active_counters() const {
  std::vector<PerfCounter> out;
  out.reserve(fds_.size());
  for (const OpenCounter& counter : fds_) out.push_back(counter.which);
  return out;
}

bool PerfCounterGroup::read(PerfCounts* out) const {
  if (fds_.empty()) return false;
  PerfCounts counts;
  for (const OpenCounter& counter : fds_) {
    PerfReading reading;
    if (!backend_->read_counter(counter.fd, &reading)) return false;
    assign_count(counter.which, scaled_value(reading), &counts);
  }
  *out = counts;
  return true;
}

PerfCounts perf_delta(const PerfCounts& begin, const PerfCounts& end) noexcept {
  PerfCounts out;
  out.cycles = saturating_sub(end.cycles, begin.cycles);
  out.instructions = saturating_sub(end.instructions, begin.instructions);
  out.cache_refs = saturating_sub(end.cache_refs, begin.cache_refs);
  out.cache_misses = saturating_sub(end.cache_misses, begin.cache_misses);
  out.branch_misses = saturating_sub(end.branch_misses, begin.branch_misses);
  out.task_clock_ns = saturating_sub(end.task_clock_ns, begin.task_clock_ns);
  return out;
}

double perf_ipc(const PerfCounts& counts) noexcept {
  if (counts.cycles == 0 || counts.instructions == 0) return 0.0;
  return static_cast<double>(counts.instructions) /
         static_cast<double>(counts.cycles);
}

double perf_cache_miss_rate(const PerfCounts& counts) noexcept {
  if (counts.cache_refs == 0) return 0.0;
  return static_cast<double>(counts.cache_misses) /
         static_cast<double>(counts.cache_refs);
}

}  // namespace mcopt::obs
