#include "obs/observables.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace mcopt::obs {

void StageObservables::add_sample(std::int64_t x) noexcept {  // mcopt: hot
  // Cross products against the ring of previous samples.  Pairs never
  // span runs: the ring is transient per-run state, so the first kMaxLag
  // samples of every run contribute fewer pairs, deterministically.
  const std::uint64_t lags =
      std::min<std::uint64_t>(samples, static_cast<std::uint64_t>(kMaxLag));
  for (std::uint64_t lag = 1; lag <= lags; ++lag) {
    const std::int64_t prev = ring[(samples - lag) % kMaxLag];
    lag_cross[lag - 1] += static_cast<WideInt>(x) * static_cast<WideInt>(prev);
    ++lag_pairs[lag - 1];
  }
  ring[samples % kMaxLag] = x;
  ++samples;
  sum += x;
  sum_sq += static_cast<WideInt>(x) * static_cast<WideInt>(x);

  window_sum += x;
  if (++window_count == kEquilibriumWindow) {
    ++windows;
    if (have_prev_window && !equilibrated) {
      const std::int64_t drift = window_sum - prev_window_sum;
      const std::int64_t magnitude = drift < 0 ? -drift : drift;
      const std::int64_t limit =
          kMeanDriftLimit * static_cast<std::int64_t>(kEquilibriumWindow);
      if (magnitude <= limit) {
        equilibrated = true;
        ++equilibrated_runs;
        first_equilibrated_sample = samples;
      }
    }
    prev_window_sum = window_sum;
    have_prev_window = true;
    window_sum = 0;
    window_count = 0;
  }
}

void StageObservables::merge(const StageObservables& other) noexcept {
  samples += other.samples;
  sum += other.sum;
  sum_sq += other.sum_sq;
  for (std::size_t lag = 0; lag < kMaxLag; ++lag) {
    lag_cross[lag] += other.lag_cross[lag];
    lag_pairs[lag] += other.lag_pairs[lag];
  }
  windows += other.windows;
  equilibrated_runs += other.equilibrated_runs;
  if (other.first_equilibrated_sample != 0 &&
      (first_equilibrated_sample == 0 ||
       other.first_equilibrated_sample < first_equilibrated_sample)) {
    first_equilibrated_sample = other.first_equilibrated_sample;
  }
  temperature = std::max(temperature, other.temperature);
  // Transient ring/window detector state is per-run by design: merging it
  // would make aggregates depend on shard grouping.
}

double StageObservables::mean() const noexcept {
  if (samples == 0) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(samples);
}

double StageObservables::variance() const noexcept {
  if (samples == 0) return 0.0;
  // n·Σx² - (Σx)² is exact in 128-bit for any realistic run length; the
  // single rounding happens in the final conversion, identically on
  // every merge grouping because the integer inputs are identical.
  const WideInt n = static_cast<WideInt>(samples);
  const WideInt wide_sum = static_cast<WideInt>(sum);
  const WideInt numerator = sum_sq * n - wide_sum * wide_sum;
  return static_cast<double>(numerator) /
         (static_cast<double>(samples) * static_cast<double>(samples));
}

double StageObservables::specific_heat() const noexcept {
  if (temperature <= 0.0) return 0.0;
  return variance() / (temperature * temperature);
}

double StageObservables::autocorrelation(std::size_t lag) const noexcept {
  if (lag == 0 || lag > kMaxLag) return 0.0;
  const std::uint64_t pairs = lag_pairs[lag - 1];
  if (pairs == 0) return 0.0;
  const double var = variance();
  if (var <= 0.0) return 0.0;
  const double mu = mean();
  const double cross_mean =
      static_cast<double>(lag_cross[lag - 1]) / static_cast<double>(pairs);
  return (cross_mean - mu * mu) / var;
}

}  // namespace mcopt::obs
