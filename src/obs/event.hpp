// The typed trace-event vocabulary of the observability layer.
//
// The paper's argument is made from run-internal dynamics — acceptance
// rates per temperature stage, uphill-move frequency per g class, where the
// patience counter fires — none of which survive into a final cost.  An
// Event is one observation of those dynamics: a fixed-size, string-free
// record carrying (run, restart, worker) identity so events from parallel
// restarts interleave coherently in one stream.
//
// Determinism contract: every field except `worker` is a pure function of
// the seed (ticks, stages, and costs are; wall-clock never appears here).
// `worker` — and the kWorkerSteal event, which exists to observe the
// parallel engine's scheduling — is the one deliberate exception, and
// consumers that compare traces across thread counts must ignore both
// (tools/trace_report.py and the trace-determinism tests do).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace mcopt::obs {

enum class EventKind : std::uint8_t {
  kStageBegin = 0,   ///< a temperature level was entered
  kProposal = 1,     ///< a random perturbation was sampled (subsampled)
  kAccept = 2,       ///< the pending perturbation was committed
  kReject = 3,       ///< the pending perturbation was discarded
  kRestartBegin = 4, ///< a multistart restart began from a fresh solution
  kNewBest = 5,      ///< the best-so-far cost improved
  kWorkerSteal = 6,  ///< a parallel worker claimed a restart (nondeterministic)
};

/// Why a stage was entered; carried only by kStageBegin events.
enum class StageReason : std::uint8_t {
  kNone = 0,         ///< not a stage event
  kStart = 1,        ///< first stage of a run
  kSlice = 2,        ///< the level's budget slice was exhausted (§4.2.1)
  kPatience = 3,     ///< the Step 4 reject counter fired
  kEquilibrium = 4,  ///< the [KIRK83] acceptance criterion fired
};

/// One observation.  Fixed-size and trivially copyable so ring buffers and
/// per-restart shards can hold millions without allocation churn.
struct Event {
  EventKind kind = EventKind::kProposal;
  StageReason reason = StageReason::kNone;
  std::uint32_t stage = 0;    ///< temperature level (replica index for
                              ///< tempering); 0 for engine-level events
  std::uint64_t run = 0;      ///< caller-chosen run id (bench: row counter)
  std::uint64_t restart = 0;  ///< restart index within the run
  std::uint64_t worker = 0;   ///< 0 = caller thread; workers are 1-based
  std::uint64_t tick = 0;     ///< budget ticks spent within the restart
  double cost = 0.0;          ///< cost the event observed (see schema docs)
  double best = 0.0;          ///< best-so-far cost when the event fired
};

/// Stable lowercase names used in the JSONL schema ("stage_begin", ...).
[[nodiscard]] const char* event_kind_name(EventKind kind) noexcept;
[[nodiscard]] const char* stage_reason_name(StageReason reason) noexcept;

/// Appends the canonical single-line JSONL form of `event` (including the
/// trailing newline) to `out`.  Key order is fixed; doubles are printed
/// with %.17g so values round-trip exactly.  This is THE schema that
/// tools/trace_report.py validates — change both together.
void append_jsonl(const Event& event, std::string& out);

/// Formats the same canonical JSONL line (trailing newline included) into a
/// caller-provided buffer with a single snprintf — no allocation, usable on
/// the flight recorder's signal-handler dump path.  Returns the line length,
/// or 0 if `cap` was too small.  Byte-identical to append_jsonl
/// (test-enforced).  256 bytes is always enough.
[[nodiscard]] std::size_t format_jsonl(const Event& event, char* buf,
                                       std::size_t cap) noexcept;

}  // namespace mcopt::obs
