#include "obs/profiler.hpp"

#include <cstddef>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace mcopt::obs {

std::int32_t ProfileTree::find_or_add(std::int32_t parent, const char* name) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].parent == parent && nodes[i].name == name) {
      return static_cast<std::int32_t>(i);
    }
  }
  ProfileNode node;
  node.name = name;
  node.parent = parent;
  nodes.push_back(std::move(node));
  return static_cast<std::int32_t>(nodes.size() - 1);
}

void ProfileTree::merge(const ProfileTree& other) {
  // Parents precede children in `other` (nodes are created on scope entry),
  // so one forward pass can map every foreign index to a local one.
  std::vector<std::int32_t> local(other.nodes.size(), -1);
  for (std::size_t i = 0; i < other.nodes.size(); ++i) {
    const ProfileNode& node = other.nodes[i];
    const std::int32_t parent =
        node.parent < 0 ? -1 : local[static_cast<std::size_t>(node.parent)];
    const std::int32_t mine = find_or_add(parent, node.name.c_str());
    local[i] = mine;
    nodes[static_cast<std::size_t>(mine)].calls += node.calls;
    nodes[static_cast<std::size_t>(mine)].ticks += node.ticks;
    nodes[static_cast<std::size_t>(mine)].wall_ns += node.wall_ns;
    nodes[static_cast<std::size_t>(mine)].perf.add(node.perf);
  }
}

void ProfileTree::nest_under(const char* name, std::uint64_t calls,
                             std::uint64_t ticks) {
  ProfileNode root;
  root.name = name;
  root.parent = -1;
  root.calls = calls;
  root.ticks = ticks;
  for (const ProfileNode& node : nodes) {
    if (node.parent < 0) {
      root.wall_ns += node.wall_ns;
      root.perf.add(node.perf);
    }
  }
  // Prepend so the parent-before-child invariant survives for merge().
  std::vector<ProfileNode> out;
  out.reserve(nodes.size() + 1);
  out.push_back(std::move(root));
  for (ProfileNode& node : nodes) {
    node.parent = node.parent < 0 ? 0 : node.parent + 1;
    out.push_back(std::move(node));
  }
  nodes = std::move(out);
}

namespace {

void append_node_json(const ProfileTree& tree, std::int32_t index,
                      bool include_wall, std::string& out) {
  const auto& node = tree.nodes[static_cast<std::size_t>(index)];
  char buf[96];
  out += "{\"name\": \"";
  out += node.name;
  out += "\", ";
  std::snprintf(buf, sizeof buf, "\"calls\": %llu, \"ticks\": %llu",
                static_cast<unsigned long long>(node.calls),
                static_cast<unsigned long long>(node.ticks));
  out += buf;
  if (include_wall) {
    std::snprintf(buf, sizeof buf, ", \"wall_ns\": %llu",
                  static_cast<unsigned long long>(node.wall_ns));
    out += buf;
    // Hardware counts share wall_ns' carve-out: present only in the
    // nondeterministic form, and only when a counter actually fired.
    if (node.perf.any()) {
      out += ", \"perf\": {";
      std::snprintf(buf, sizeof buf,
                    "\"cycles\": %llu, \"instructions\": %llu",
                    static_cast<unsigned long long>(node.perf.cycles),
                    static_cast<unsigned long long>(node.perf.instructions));
      out += buf;
      std::snprintf(buf, sizeof buf,
                    ", \"cache_refs\": %llu, \"cache_misses\": %llu",
                    static_cast<unsigned long long>(node.perf.cache_refs),
                    static_cast<unsigned long long>(node.perf.cache_misses));
      out += buf;
      std::snprintf(buf, sizeof buf,
                    ", \"branch_misses\": %llu, \"task_clock_ns\": %llu}",
                    static_cast<unsigned long long>(node.perf.branch_misses),
                    static_cast<unsigned long long>(node.perf.task_clock_ns));
      out += buf;
    }
  }
  out += ", \"children\": [";
  bool first = true;
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    if (tree.nodes[i].parent != index) continue;
    if (!first) out += ", ";
    first = false;
    append_node_json(tree, static_cast<std::int32_t>(i), include_wall, out);
  }
  out += "]}";
}

}  // namespace

std::string ProfileTree::to_json(bool include_wall) const {
  std::string out = "[";
  bool first = true;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].parent >= 0) continue;
    if (!first) out += ", ";
    first = false;
    append_node_json(*this, static_cast<std::int32_t>(i), include_wall, out);
  }
  out += "]";
  return out;
}

}  // namespace mcopt::obs
