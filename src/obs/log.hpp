// One doorway for human-facing stderr chatter.
//
// All diagnostic output from the library, benches, and examples goes
// through obs::log() so a single --quiet/--verbose flag controls it; the
// determinism lint forbids raw std::cerr / fprintf(stderr, ...) inside
// src/ to keep it that way.  This is for humans only — structured data
// belongs in a TraceSink or a RunMetrics block, never in the log.
//
// Thread-safety: log() may be called from any thread.  The level gate is
// a relaxed atomic and the (message, newline) stderr write pair is
// serialized by a util::Mutex, so concurrent lines never interleave.
#pragma once

#include <cstdarg>

namespace mcopt::obs {

enum class LogLevel : int {
  kError = 0,  ///< always shown (even under --quiet)
  kInfo = 1,   ///< default: progress and summaries
  kDebug = 2,  ///< --verbose: per-phase detail
};

/// Sets the global threshold; messages above it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Applies the MCOPT_LOG_LEVEL environment variable ("error"/"info"/
/// "debug", or "0"/"1"/"2") to the global threshold.  Returns true when
/// the variable was present and valid; unset or malformed values leave
/// the threshold untouched.  The bench drivers call this before parsing
/// flags, so --quiet/--verbose still win over the environment.
bool apply_env_log_level();

/// printf-style message to stderr, newline appended.  Dropped (cheaply)
/// when `level` is above the current threshold.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void log(LogLevel level, const char* fmt, ...);

void vlog(LogLevel level, const char* fmt, std::va_list args);

}  // namespace mcopt::obs
