// Deterministic log-bucketed histogram.
//
// The paper's distributional arguments (how big are the uphill moves each g
// class accepts?  how does the acceptance rate decay per stage?) need cheap
// always-on aggregates, not full traces.  LogHistogram is the primitive: a
// fixed set of power-of-two buckets with *exact integer boundaries*, so
// bucketing never depends on floating-point log/exp and bucket counts are
// pure 64-bit sums.  Merging histograms is therefore commutative and
// associative — shards from parallel restarts reduce to bit-identical
// counts in any merge order, the same contract trace determinism already
// enforces for event streams.
//
// Bucket layout: bucket 0 holds values in [0, 1); bucket i (1 <= i < 39)
// holds [2^(i-1), 2^i); the last bucket absorbs everything >= 2^38.
// Negative values are clamped to bucket 0 (callers record magnitudes).
//
// `sum` is a double and is exact for integer-valued observations below
// 2^53 — every cost delta in the reproduction is integral — and shard
// merges happen in restart-index order anyway, so the exported sum is
// bit-identical across thread counts either way.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace mcopt::obs {

class LogHistogram {
 public:
  /// Number of buckets, including the [0,1) bucket and the overflow bucket.
  static constexpr std::size_t kNumBuckets = 40;

  /// Exclusive upper bound of bucket `i` (1, 2, 4, ...); the overflow
  /// bucket has no finite bound and reports 0 here.
  [[nodiscard]] static std::uint64_t bucket_bound(std::size_t i) noexcept;

  /// Bucket index for a value (negatives clamp to bucket 0).
  [[nodiscard]] static std::size_t bucket_index(double value) noexcept;

  void record(double value) noexcept;

  /// Commutative element-wise accumulation (see header comment).
  void merge(const LogHistogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i];
  }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Cumulative count of observations <= bucket_bound(i) — the Prometheus
  /// `le` convention used by both exporters.
  [[nodiscard]] std::uint64_t cumulative(std::size_t i) const noexcept;

  /// Appends a stable JSON object: {"count":N,"sum":S,"buckets":[{"le":1,
  /// "count":c}, ..., {"le":"+Inf","count":N}]}.  Cumulative counts; only
  /// buckets up to the last non-empty one are listed before the +Inf entry.
  void append_json(std::string& out) const;

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace mcopt::obs
