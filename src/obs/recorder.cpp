#include "obs/recorder.hpp"

#include <cmath>
#include <cstddef>

#include "obs/perfcount.hpp"

namespace mcopt::obs {

Recorder::Recorder(TraceSink* sink, bool collect_metrics,
                   std::uint64_t trace_sample, std::uint64_t run,
                   bool collect_profile)
    : off_(sink == nullptr && !collect_metrics && !collect_profile),
      metrics_enabled_(collect_metrics || collect_profile),
      profile_enabled_(collect_profile),
      sink_(sink),
      sample_(trace_sample == 0 ? 1 : trace_sample),
      run_(run) {}

Recorder Recorder::for_restart(std::uint64_t restart, std::uint64_t worker,
                               TraceSink* shard_sink) const {
  Recorder out;
  if (off_) return out;  // an off root derives off recorders, shard or not
  out.metrics_enabled_ = metrics_enabled_;
  out.profile_enabled_ = profile_enabled_;
  out.sink_ = shard_sink != nullptr ? shard_sink : sink_;
  out.off_ = out.sink_ == nullptr && !out.metrics_enabled_;
  out.sample_ = sample_;
  out.run_ = run_;
  out.restart_ = restart;
  out.worker_ = worker;
  // Perf descriptors count the thread that opened them; worker 0 is by
  // convention the caller's own thread (sequential loops, remainder
  // slices), so only those shards keep sampling — a pool worker reading
  // the armer's counters would attribute the wrong thread's work.
  out.perf_ = worker == 0 ? perf_ : nullptr;
  return out;
}

void Recorder::begin_run(RunMetrics* metrics, std::size_t num_stages,
                         bool stage_walls) {
  if (off_) return;
  // Close any scopes left open by a previous run (begin_run without
  // end_run) *before* re-pointing metrics_: the open nodes index the old
  // tree, and discarding them would strand wall time already credited to
  // their exited children — breaking the child-sums-never-exceed-parent
  // invariant the timeline export and profiler_test rely on.
  while (!pstack_.empty()) profile_exit();
  metrics_ = metrics_enabled_ ? metrics : nullptr;
  if (metrics_ != nullptr) {
    metrics_->collected = true;
    if (metrics_->stages.size() < num_stages) {
      metrics_->stages.resize(num_stages);
    }
    if (metrics_->observables.size() < num_stages) {
      metrics_->observables.resize(num_stages);
    }
  }
  step_ = 0;
  sample_live_ = true;
  stage_walls_ = stage_walls;
  have_stage_ = false;
  cur_stage_ = 0;
  pstack_.clear();
  stage_watch_.reset();
  run_watch_.reset();
}

void Recorder::end_run() {
  if (off_) return;
  // Failsafe: scopes still open when the run ends (a ProfileScope outliving
  // end_run in the runner's epilogue) are closed here; their destructors
  // then find an empty stack and no-op.
  while (!pstack_.empty()) profile_exit();
  close_stage_wall();
  if (metrics_ != nullptr) metrics_->wall_seconds += run_watch_.seconds();
  metrics_ = nullptr;
}

StageMetrics& Recorder::stage_slot(std::uint32_t stage) {
  if (metrics_->stages.size() <= stage) metrics_->stages.resize(stage + 1);
  return metrics_->stages[stage];
}

StageObservables& Recorder::observables_slot(std::uint32_t stage) {
  if (metrics_->observables.size() <= stage) {
    metrics_->observables.resize(stage + 1);
  }
  return metrics_->observables[stage];
}

void Recorder::emit(EventKind kind, StageReason reason, std::uint32_t stage,
                    std::uint64_t tick, double cost, double best) {
  if (sink_ == nullptr) return;
  Event event;
  event.kind = kind;
  event.reason = reason;
  event.stage = stage;
  event.run = run_;
  event.restart = restart_;
  event.worker = worker_;
  event.tick = tick;
  event.cost = cost;
  event.best = best;
  sink_->write(event);
  if (metrics_ != nullptr) ++metrics_->trace_events;
}

void Recorder::close_stage_wall() {
  if (metrics_ != nullptr && stage_walls_ && have_stage_) {
    stage_slot(cur_stage_).wall_seconds += stage_watch_.seconds();
  }
}

void Recorder::stage_begin_impl(std::uint32_t stage, std::uint64_t tick,
                                double cost, double best, StageReason reason) {
  if (metrics_ != nullptr) {
    close_stage_wall();
    // A patience transition is attributed to the level it fired in, i.e.
    // the stage being left, not the one being entered.
    if (reason == StageReason::kPatience && have_stage_) {
      ++stage_slot(cur_stage_).patience_fires;
    }
    stage_watch_.reset();
  }
  have_stage_ = true;
  cur_stage_ = stage;
  emit(EventKind::kStageBegin, reason, stage, tick, cost, best);
}

void Recorder::proposal_impl(std::uint32_t stage, std::uint64_t tick,
                             double cost, double best, double delta) {
  if (metrics_ != nullptr) {
    StageMetrics& s = stage_slot(stage);
    ++s.proposals;
    ++s.ticks;
    if (delta < 0.0) {
      ++s.downhill_proposals;
    } else if (delta > 0.0) {
      ++s.uphill_proposals;
      metrics_->uphill_delta_proposed.record(delta);
    } else {
      ++s.sideways_proposals;
    }
    // The chain's energy at this proposal is the pre-move cost; runners
    // pass the candidate cost plus its delta, so recover it exactly.
    // llround keeps integral-valued costs exact and quantizes real-valued
    // ones deterministically.
    observables_slot(stage).add_sample(std::llround(cost - delta));
  }
  ++step_;
  sample_live_ = sample_ <= 1 || step_ % sample_ == 0;
  if (sample_live_) {
    emit(EventKind::kProposal, StageReason::kNone, stage, tick, cost, best);
  }
}

void Recorder::accept_impl(std::uint32_t stage, std::uint64_t tick,
                           double cost, double best, double delta) {
  if (metrics_ != nullptr) {
    StageMetrics& s = stage_slot(stage);
    ++s.accepts;
    if (delta > 0.0) {
      ++s.uphill_accepts;
      metrics_->uphill_delta_accepted.record(delta);
    }
  }
  if (sample_live_) {
    emit(EventKind::kAccept, StageReason::kNone, stage, tick, cost, best);
  }
}

void Recorder::reject_impl(std::uint32_t stage, std::uint64_t tick,
                           double cost, double best) {
  if (metrics_ != nullptr) ++stage_slot(stage).rejects;
  if (sample_live_) {
    emit(EventKind::kReject, StageReason::kNone, stage, tick, cost, best);
  }
}

void Recorder::new_best_impl(std::uint32_t stage, std::uint64_t tick,
                             double best) {
  if (metrics_ != nullptr) {
    ++metrics_->new_bests;
    ++stage_slot(stage).new_bests;
  }
  emit(EventKind::kNewBest, StageReason::kNone, stage, tick, best, best);
}

void Recorder::restart_begin_impl(double cost) {
  emit(EventKind::kRestartBegin, StageReason::kNone, 0, 0, cost, cost);
}

void Recorder::worker_steal_impl() {
  emit(EventKind::kWorkerSteal, StageReason::kNone, 0, 0, 0.0, 0.0);
}

void Recorder::patience_reset_impl() {
  if (metrics_ != nullptr) ++metrics_->patience_resets;
}

void Recorder::descent_ticks_impl(std::uint32_t stage, std::uint64_t n) {
  if (metrics_ != nullptr) stage_slot(stage).ticks += n;
}

void Recorder::invariant_check_impl(double seconds) {
  if (metrics_ != nullptr) {
    ++metrics_->invariant_checks;
    metrics_->invariant_seconds += seconds;
  }
}

void Recorder::stage_temperature_impl(std::uint32_t stage, double y) {
  if (metrics_ != nullptr) observables_slot(stage).temperature = y;
}

bool Recorder::profile_enter_impl(const char* name) {
  if (metrics_ == nullptr) return false;  // no run bound
  const std::int32_t parent = pstack_.empty() ? -1 : pstack_.back().node;
  const std::int32_t node = metrics_->profile.find_or_add(parent, name);
  ++metrics_->profile.nodes[static_cast<std::size_t>(node)].calls;
  OpenScope scope{node, util::Stopwatch{}, PerfCounts{}, false};
  if (perf_ != nullptr) scope.perf_live = perf_->read(&scope.perf_begin);
  pstack_.push_back(scope);
  return true;
}

void Recorder::profile_exit() {
  if (pstack_.empty() || metrics_ == nullptr) return;
  const OpenScope& top = pstack_.back();
  ProfileNode& node =
      metrics_->profile.nodes[static_cast<std::size_t>(top.node)];
  node.wall_ns += top.watch.nanos();
  if (top.perf_live && perf_ != nullptr) {
    PerfCounts end;
    if (perf_->read(&end)) node.perf.add(perf_delta(top.perf_begin, end));
  }
  pstack_.pop_back();
}

void Recorder::profile_add_ticks(std::uint64_t n) {
  if (pstack_.empty() || metrics_ == nullptr) return;
  metrics_->profile.nodes[static_cast<std::size_t>(pstack_.back().node)]
      .ticks += n;
}

}  // namespace mcopt::obs
