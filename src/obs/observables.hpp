// Per-temperature-stage thermodynamic observables, maintained online.
//
// The paper's open questions — is the chain equilibrated at each
// temperature, is the schedule long enough, when does annealing stop
// paying for itself — are answered by a handful of statistics of the
// cost (energy) time series per stage: mean energy, energy variance (and
// through it the specific heat C = Var(E)/T², the quantity whose peak
// marks the freezing transition), short-lag autocorrelation (how slowly
// the chain decorrelates), and a drift test that flags a stage as
// equilibrated.  StageObservables maintains all of them in exact integer
// arithmetic so that — like every other metric in this project — the
// result is a pure function of the seed:
//
//   * samples are the chain's current cost at each proposal, quantized
//     with llround (exact for the integral-valued density/partition
//     costs; a deterministic quantization for real-valued ones);
//   * first and second moments accumulate in int64 / int128 sums (the
//     cancellation-free integer analogue of Welford's recurrence —
//     floating point enters only in the derived accessors);
//   * lag-k autocorrelation accumulates Σ x_i·x_{i-k} cross-sums over a
//     fixed ring of the last kMaxLag samples;
//   * the equilibrium detector compares consecutive windows of
//     kEquilibriumWindow samples with an exact integer threshold:
//     |Σwindow - Σprev| <= kMeanDriftLimit * kEquilibriumWindow, i.e. the
//     windowed mean drifted by at most kMeanDriftLimit cost units.
//
// Because every accumulator merges by commutative integer addition (plus
// a min for the first detection point and a max for the stage
// temperature), per-restart shards reduce to bit-identical aggregates in
// any grouping — the same contract LogHistogram documents — and the
// derived doubles, computed only at export time, inherit it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace mcopt::obs {

/// 128-bit accumulator for second moments and cross products (gcc/clang
/// builtin; both toolchains the project supports provide it).  int64
/// would overflow after ~2 samples of a 2^31-scale cost.
using WideInt = __int128;

/// Exact running statistics of one temperature stage's cost series.
///
/// Fed by obs::Recorder from the un-sampled metrics path (never the
/// strided trace path, so --trace-sample cannot change a single bit of
/// these).  The accumulator fields merge across restart shards; the
/// "transient" fields at the bottom are per-run detector state and are
/// deliberately neither merged nor exported.
struct StageObservables {
  /// Autocorrelation lags tracked (1..kMaxLag).
  static constexpr std::size_t kMaxLag = 8;
  /// Samples per equilibrium-detector window.
  static constexpr std::uint64_t kEquilibriumWindow = 32;
  /// Maximum allowed windowed-mean drift, in whole cost units per sample.
  static constexpr std::int64_t kMeanDriftLimit = 1;

  // --- exact accumulators (merged by addition).
  std::uint64_t samples = 0;  ///< cost samples observed (one per proposal)
  std::int64_t sum = 0;       ///< Σ x
  WideInt sum_sq = 0;         ///< Σ x²
  std::array<WideInt, kMaxLag> lag_cross{};        ///< Σ x_i·x_{i-lag}
  std::array<std::uint64_t, kMaxLag> lag_pairs{};  ///< pairs per lag
  std::uint64_t windows = 0;  ///< completed detector windows

  // --- merged with dedicated semantics.
  /// Runs (restart shards) whose detector flagged this stage; sums.
  std::uint64_t equilibrated_runs = 0;
  /// Sample index (1-based, within its run) of the earliest detection
  /// across all merged runs; 0 = never detected; min-merges over nonzero.
  std::uint64_t first_equilibrated_sample = 0;
  /// Boltzmann temperature Y_t of this stage, when the acceptance rule
  /// has one (annealing/Metropolis/tempering); 0 otherwise.  Identical
  /// across shards of one configuration, so max-merge is exact.
  double temperature = 0.0;

  // --- transient per-run detector state: NOT merged, NOT exported.
  std::array<std::int64_t, kMaxLag> ring{};  ///< last kMaxLag samples
  std::int64_t window_sum = 0;       ///< current (partial) window
  std::int64_t prev_window_sum = 0;  ///< last completed window
  std::uint64_t window_count = 0;    ///< samples in the current window
  bool have_prev_window = false;
  bool equilibrated = false;  ///< this run flagged this stage

  /// Folds one cost sample in.  Exact; consumes no randomness.
  void add_sample(std::int64_t x) noexcept;

  /// Accumulator merge (see the field comments for per-field semantics).
  /// Commutative and associative over the exported statistics, which is
  /// what makes shard reduction order-free.
  void merge(const StageObservables& other) noexcept;

  // --- derived statistics (floating point enters here only).
  [[nodiscard]] double mean() const noexcept;
  /// Population variance, from the exact moment sums.
  [[nodiscard]] double variance() const noexcept;
  /// Var(E)/T² when a temperature is known; 0 otherwise.
  [[nodiscard]] double specific_heat() const noexcept;
  /// Lag-k autocorrelation estimate (Σx_i·x_{i-k}/pairs - mean²)/variance
  /// for k in 1..kMaxLag; 0 when undefined (no pairs or zero variance).
  [[nodiscard]] double autocorrelation(std::size_t lag) const noexcept;
};

}  // namespace mcopt::obs
