// Trace sinks: where Event streams go.
//
// A TraceSink is a single-writer consumer of Events.  The runners never
// write to a sink from two threads: the parallel multistart engine buffers
// each restart's events in a private VectorSink shard (one per restart, on
// the worker that ran it) and the reducing thread drains the shards into
// the caller's sink strictly in restart-index order.  That makes a traced
// parallel run produce the same stream as the sequential loop — the
// project's bit-reproducibility contract extends to traces, except for the
// `worker` field and kWorkerSteal events (see obs/event.hpp).
//
// Three sinks cover the intended uses:
//   * JsonlFileSink — one JSON object per line, the on-disk interchange
//     format consumed by tools/trace_report.py;
//   * RingBufferSink — bounded in-memory tail for always-on tracing (keeps
//     the last N events, counts what it dropped);
//   * VectorSink — unbounded in-memory buffer for shards and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/event.hpp"

namespace mcopt::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const Event& event) = 0;
  /// Push any buffered output to the underlying medium.  No-op by default.
  virtual void flush() {}
};

/// Unbounded in-memory buffer; the shard sink of the multistart engines.
class VectorSink final : public TraceSink {
 public:
  void write(const Event& event) override { events_.push_back(event); }

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  /// Moves the buffered events out, leaving the sink empty.
  [[nodiscard]] std::vector<Event> take() noexcept {
    return std::exchange(events_, {});
  }
  void clear() noexcept { events_.clear(); }

 private:
  std::vector<Event> events_;
};

/// Bounded buffer keeping the most recent `capacity` events.
class RingBufferSink final : public TraceSink {
 public:
  /// Capacity must be >= 1; throws std::invalid_argument otherwise.
  explicit RingBufferSink(std::size_t capacity);

  void write(const Event& event) override;

  /// Buffered events, oldest first.
  [[nodiscard]] std::vector<Event> snapshot() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  /// Events overwritten because the buffer was full.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  std::vector<Event> buffer_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  bool full_ = false;
  std::uint64_t dropped_ = 0;
};

/// JSONL writer (see obs/event.hpp append_jsonl for the schema).  Output is
/// buffered and flushed on flush() and destruction.
class JsonlFileSink final : public TraceSink {
 public:
  /// Opens `path` for writing; throws std::invalid_argument on failure.
  explicit JsonlFileSink(const std::string& path);
  /// Writes to a caller-owned stream (tests, stdout piping).
  explicit JsonlFileSink(std::ostream& out);
  ~JsonlFileSink() override;

  void write(const Event& event) override;
  void flush() override;

  /// Events written so far (buffered or not).
  [[nodiscard]] std::uint64_t written() const noexcept { return written_; }

 private:
  std::ofstream file_;    // used by the path constructor
  std::ostream* out_;     // always valid; aliases file_ or the caller's stream
  std::string buffer_;
  std::uint64_t written_ = 0;
};

}  // namespace mcopt::obs
