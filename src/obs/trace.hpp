// Trace sinks: where Event streams go.
//
// Every sink is internally synchronized (a util::Mutex guards its buffer
// state, enforced by the thread-safety build), so a sink may be shared —
// the job-queue/server work stacked on this library hands one
// RingBufferSink to many concurrent jobs.  Determinism of the *order* of
// a stream is still the writers' contract, not the sink's: the parallel
// multistart engine buffers each restart's events in a private VectorSink
// shard (one per restart, on the worker that ran it) and the reducing
// thread drains the shards into the caller's sink strictly in
// restart-index order.  That makes a traced parallel run produce the same
// stream as the sequential loop — the project's bit-reproducibility
// contract extends to traces, except for the `worker` field and
// kWorkerSteal events (see obs/event.hpp).
//
// Three sinks cover the intended uses:
//   * JsonlFileSink — one JSON object per line, the on-disk interchange
//     format consumed by tools/trace_report.py;
//   * RingBufferSink — bounded in-memory tail for always-on tracing (keeps
//     the last N events, counts what it dropped);
//   * VectorSink — unbounded in-memory buffer for shards and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/event.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mcopt::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Safe to call from any thread; implementations lock internally.
  virtual void write(const Event& event) = 0;
  /// Push any buffered output to the underlying medium.  No-op by default.
  virtual void flush() {}
};

/// Unbounded in-memory buffer; the shard sink of the multistart engines.
class VectorSink final : public TraceSink {
 public:
  void write(const Event& event) override EXCLUDES(mu_) {
    util::MutexLock lock{mu_};
    events_.push_back(event);
  }

  /// A copy of the buffered events (a reference would escape mu_).
  [[nodiscard]] std::vector<Event> events() const EXCLUDES(mu_) {
    util::MutexLock lock{mu_};
    return events_;
  }
  /// Moves the buffered events out, leaving the sink empty.
  [[nodiscard]] std::vector<Event> take() EXCLUDES(mu_) {
    util::MutexLock lock{mu_};
    return std::exchange(events_, {});
  }
  void clear() EXCLUDES(mu_) {
    util::MutexLock lock{mu_};
    events_.clear();
  }

 private:
  mutable util::Mutex mu_;
  std::vector<Event> events_ GUARDED_BY(mu_);
};

/// Bounded buffer keeping the most recent `capacity` events.
class RingBufferSink final : public TraceSink {
 public:
  /// Capacity must be >= 1; throws std::invalid_argument otherwise.
  explicit RingBufferSink(std::size_t capacity);

  void write(const Event& event) override EXCLUDES(mu_);

  /// Buffered events, oldest first.
  [[nodiscard]] std::vector<Event> snapshot() const EXCLUDES(mu_);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const EXCLUDES(mu_);
  /// Events overwritten because the buffer was full.
  [[nodiscard]] std::uint64_t dropped() const EXCLUDES(mu_);

  /// CRASH PATH ONLY: writes the buffered events as JSONL straight to a
  /// file descriptor, oldest first, formatting each line into a stack
  /// buffer — no locking, no allocation, no iostreams, so it is safe to
  /// call from a signal or terminate handler while other threads are
  /// stopped mid-write.  Reads are best-effort (a concurrently written
  /// slot may come out torn as a garbled line; indices are clamped so the
  /// walk itself stays in bounds).  Returns the number of lines written.
  std::size_t crash_dump(int fd) const noexcept NO_THREAD_SAFETY_ANALYSIS;

 private:
  /// Shared by snapshot() and the (locked) parts of write.
  [[nodiscard]] std::vector<Event> snapshot_locked() const REQUIRES(mu_);

  const std::size_t capacity_;  // immutable after construction: no guard
  mutable util::Mutex mu_;
  std::vector<Event> buffer_ GUARDED_BY(mu_);
  std::size_t next_ GUARDED_BY(mu_) = 0;
  bool full_ GUARDED_BY(mu_) = false;
  std::uint64_t dropped_ GUARDED_BY(mu_) = 0;
};

/// JSONL writer (see obs/event.hpp append_jsonl for the schema).  Output is
/// buffered and flushed on flush() and destruction.  Lines are appended
/// atomically under the sink's mutex, so concurrent writers interleave per
/// event, never mid-line.
class JsonlFileSink final : public TraceSink {
 public:
  /// Opens `path` for writing; throws std::invalid_argument on failure.
  explicit JsonlFileSink(const std::string& path);
  /// Writes to a caller-owned stream (tests, stdout piping).
  explicit JsonlFileSink(std::ostream& out);
  ~JsonlFileSink() override;

  void write(const Event& event) override EXCLUDES(mu_);
  void flush() override EXCLUDES(mu_);

  /// Events written so far (buffered or not).
  [[nodiscard]] std::uint64_t written() const EXCLUDES(mu_);

 private:
  void flush_locked() REQUIRES(mu_);

  std::ofstream file_;  // used by the path constructor
  mutable util::Mutex mu_;
  /// Always valid; aliases file_ or the caller's stream.  The stream is
  /// only touched with mu_ held.
  std::ostream* out_ PT_GUARDED_BY(mu_);
  std::string buffer_ GUARDED_BY(mu_);
  std::uint64_t written_ GUARDED_BY(mu_) = 0;
};

/// Fans one stream out to two sinks (e.g. a JSONL file AND the flight
/// recorder's ring).  Holds no state of its own, so it needs no lock; the
/// children synchronize internally.  Both pointers must outlive the tee
/// and be non-null.
class TeeSink final : public TraceSink {
 public:
  TeeSink(TraceSink* first, TraceSink* second)
      : first_(first), second_(second) {}

  void write(const Event& event) override {
    first_->write(event);
    second_->write(event);
  }
  void flush() override {
    first_->flush();
    second_->flush();
  }

 private:
  TraceSink* first_;
  TraceSink* second_;
};

}  // namespace mcopt::obs
