// Per-run metrics: counters and per-stage tallies summarizing a run's
// internal dynamics without the volume of a full trace.
//
// RunMetrics rides inside core::RunResult (the `metrics` block) so the
// multistart engines can merge per-restart metrics with the same
// index-ordered fold they already use for work counters — per-worker
// metric shards therefore reduce deterministically at any thread count.
// Collection is opt-in via obs::Recorder; when no recorder is active the
// block stays empty (`collected == false`, no stage vector) and costs one
// predictable branch per runner event.
//
// Determinism: every counter is a pure function of the seed.  The
// *_seconds fields are wall-clock (steady_clock durations) and are
// explicitly excluded from the bit-reproducibility contract — they exist
// for profiling, never for comparison across runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/observables.hpp"
#include "obs/profiler.hpp"

namespace mcopt::obs {

/// Tallies for one temperature level (one replica, for tempering).
struct StageMetrics {
  std::uint64_t proposals = 0;       ///< perturbations sampled at this level
  std::uint64_t accepts = 0;         ///< committed
  std::uint64_t uphill_accepts = 0;  ///< committed with a cost increase
  std::uint64_t rejects = 0;         ///< discarded
  std::uint64_t downhill_proposals = 0;  ///< proposal mix: Δcost < 0
  std::uint64_t sideways_proposals = 0;  ///< proposal mix: Δcost == 0
  std::uint64_t uphill_proposals = 0;    ///< proposal mix: Δcost > 0
  std::uint64_t new_bests = 0;       ///< best-so-far improvements
  std::uint64_t patience_fires = 0;  ///< Step 4 counter advanced OUT of here
  std::uint64_t ticks = 0;           ///< budget ticks charged at this level
  double wall_seconds = 0.0;         ///< wall time spent (staged runners only)

  StageMetrics& operator+=(const StageMetrics& other) noexcept;

  /// accepts / proposals, 0 when no proposals were made.
  [[nodiscard]] double acceptance_rate() const noexcept {
    return proposals == 0
               ? 0.0
               : static_cast<double>(accepts) / static_cast<double>(proposals);
  }

  /// uphill_accepts / uphill_proposals — the empirical acceptance rate of
  /// cost-increasing moves, i.e. the realized g(t) of this stage.  0 when
  /// no uphill move was proposed.
  [[nodiscard]] double uphill_rate() const noexcept {
    return uphill_proposals == 0 ? 0.0
                                 : static_cast<double>(uphill_accepts) /
                                       static_cast<double>(uphill_proposals);
  }
};

/// Whole-run (or whole-aggregate) metrics summary.
struct RunMetrics {
  bool collected = false;  ///< true once a metrics-enabled Recorder ran

  std::uint64_t restarts = 0;         ///< multistart restarts folded in
  std::uint64_t new_bests = 0;        ///< best-so-far improvements
  std::uint64_t patience_resets = 0;  ///< Step 4 counter reset by an accept
  std::uint64_t trace_events = 0;     ///< events emitted (post-sampling)
  std::uint64_t invariant_checks = 0; ///< deep verifications timed below
  double invariant_seconds = 0.0;     ///< wall time inside check_invariants()
  double wall_seconds = 0.0;          ///< wall time of the run(s)
  /// Parallel-engine scheduling behaviour.  Like `worker` stamps on events,
  /// these are deliberately nondeterministic (they observe the scheduler)
  /// and are excluded from the registry's deterministic exports.
  std::uint64_t worker_steals = 0;    ///< restarts claimed by pool workers
  std::uint64_t queue_peak = 0;       ///< max speculation-queue depth (max-merged)
  /// Uphill Δcost magnitudes, log-bucketed (obs/histogram.hpp): every
  /// proposed uphill move, and the subset that was accepted.
  LogHistogram uphill_delta_proposed;
  LogHistogram uphill_delta_accepted;
  ProfileTree profile;                ///< hierarchical stage profile, if on
  std::vector<StageMetrics> stages;   ///< indexed by temperature level
  /// Thermodynamic observables per temperature level (exact cost-series
  /// statistics, specific heat, autocorrelation, equilibrium detection) —
  /// same index space as `stages`, same shard-merge discipline.
  std::vector<StageObservables> observables;

  /// Element-wise accumulation; stage vectors of different lengths merge by
  /// index (the shorter one is treated as zero-padded).
  void merge(const RunMetrics& other);

  /// Pretty-printed JSON object (stable key order, two-space indent) — the
  /// payload of the bench drivers' --metrics FILE.
  [[nodiscard]] std::string to_json() const;

  /// One-line human summary for logs and RunResult::to_string.
  [[nodiscard]] std::string summary() const;
};

}  // namespace mcopt::obs
