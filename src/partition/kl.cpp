#include "partition/kl.hpp"

#include <cstddef>
#include <limits>
#include <stdexcept>
#include <utility>

namespace mcopt::partition {

namespace {

/// Dense edge-weight matrix (parallel edges accumulate).
std::vector<int> weight_matrix(const Netlist& netlist) {
  const std::size_t n = netlist.num_cells();
  std::vector<int> w(n * n, 0);
  for (NetId net = 0; net < netlist.num_nets(); ++net) {
    const auto pins = netlist.pins(net);
    const CellId a = pins[0];
    const CellId b = pins[1];
    ++w[static_cast<std::size_t>(a) * n + b];
    ++w[static_cast<std::size_t>(b) * n + a];
  }
  return w;
}

}  // namespace

KlResult kernighan_lin(const Netlist& netlist,
                       std::vector<std::uint8_t> start_sides) {
  if (!netlist.is_graph()) {
    throw std::invalid_argument("kernighan_lin: netlist must be a graph");
  }
  const std::size_t n = netlist.num_cells();
  if (start_sides.size() != n) {
    throw std::invalid_argument("kernighan_lin: sides size != cell count");
  }

  const std::vector<int> w = weight_matrix(netlist);
  auto weight = [&](CellId a, CellId b) {
    return w[static_cast<std::size_t>(a) * n + b];
  };

  KlResult result;
  result.sides = std::move(start_sides);

  bool improved = true;
  while (improved) {
    improved = false;
    ++result.passes;

    // D values at pass start.
    std::vector<long long> d(n, 0);
    for (CellId v = 0; v < n; ++v) {
      for (CellId u = 0; u < n; ++u) {
        if (u == v) continue;
        const int wt = weight(v, u);
        if (wt == 0) continue;
        d[v] += result.sides[u] != result.sides[v] ? wt : -wt;
      }
    }

    std::vector<char> locked(n, 0);
    std::vector<std::pair<CellId, CellId>> swaps;
    std::vector<long long> gains;

    while (true) {
      long long best_gain = std::numeric_limits<long long>::min();
      CellId best_a = 0;
      CellId best_b = 0;
      bool found = false;
      for (CellId a = 0; a < n; ++a) {
        if (locked[a] || result.sides[a] != 0) continue;
        for (CellId b = 0; b < n; ++b) {
          if (locked[b] || result.sides[b] != 1) continue;
          ++result.evaluations;
          const long long gain = d[a] + d[b] - 2 * weight(a, b);
          if (!found || gain > best_gain) {
            best_gain = gain;
            best_a = a;
            best_b = b;
            found = true;
          }
        }
      }
      if (!found) break;

      swaps.emplace_back(best_a, best_b);
      gains.push_back(best_gain);
      locked[best_a] = 1;
      locked[best_b] = 1;
      for (CellId v = 0; v < n; ++v) {
        if (locked[v]) continue;
        const int wa = weight(v, best_a);
        const int wb = weight(v, best_b);
        if (result.sides[v] == 0) {
          d[v] += 2 * wa - 2 * wb;
        } else {
          d[v] += 2 * wb - 2 * wa;
        }
      }
    }

    // Best prefix of the tentative swap sequence.
    long long best_total = 0;
    std::size_t best_len = 0;
    long long running = 0;
    for (std::size_t i = 0; i < gains.size(); ++i) {
      running += gains[i];
      if (running > best_total) {
        best_total = running;
        best_len = i + 1;
      }
    }
    if (best_total > 0) {
      for (std::size_t i = 0; i < best_len; ++i) {
        result.sides[swaps[i].first] = 1;
        result.sides[swaps[i].second] = 0;
      }
      improved = true;
    }
  }

  result.cut = PartitionState{netlist, result.sides}.cut();
  return result;
}

KlResult kernighan_lin_random(const Netlist& netlist, util::Rng& rng) {
  return kernighan_lin(netlist, PartitionState::random(netlist, rng).sides());
}

}  // namespace mcopt::partition
