#include "partition/partition.hpp"

#include <cstddef>
#include <stdexcept>
#include <utility>

#include "util/invariant.hpp"

namespace mcopt::partition {

PartitionState::PartitionState(const Netlist& netlist,
                               std::vector<std::uint8_t> sides)
    : netlist_(&netlist), sides_(std::move(sides)) {
  if (sides_.size() != netlist.num_cells()) {
    throw std::invalid_argument("PartitionState: sides size != cell count");
  }
  for (const auto s : sides_) {
    if (s > 1) throw std::invalid_argument("PartitionState: side must be 0/1");
  }
  rebuild();
}

PartitionState PartitionState::random(const Netlist& netlist, util::Rng& rng) {
  const std::size_t n = netlist.num_cells();
  std::vector<std::uint8_t> sides(n, 1);
  std::vector<CellId> cells(n);
  for (std::size_t i = 0; i < n; ++i) cells[i] = static_cast<CellId>(i);
  rng.shuffle(cells);
  for (std::size_t i = 0; i < (n + 1) / 2; ++i) sides[cells[i]] = 0;
  return PartitionState{netlist, std::move(sides)};
}

void PartitionState::rebuild() {
  on_side0_.assign(netlist_->num_nets(), 0);
  cut_ = 0;
  side0_count_ = 0;
  for (CellId c = 0; c < sides_.size(); ++c) {
    if (sides_[c] == 0) ++side0_count_;
  }
  for (NetId n = 0; n < netlist_->num_nets(); ++n) {
    int zero = 0;
    for (const CellId c : netlist_->pins(n)) zero += sides_[c] == 0;
    on_side0_[n] = zero;
    const auto size = static_cast<int>(netlist_->pins(n).size());
    if (zero > 0 && zero < size) ++cut_;
  }
}

bool PartitionState::is_balanced() const noexcept {
  const auto n = sides_.size();
  const auto s0 = side0_count_;
  const auto s1 = n - s0;
  return (s0 > s1 ? s0 - s1 : s1 - s0) <= 1;
}

void PartitionState::flip(CellId c) {
  MCOPT_DCHECK(c < sides_.size(), "flip cell out of range");
  const int to_side0 = sides_[c] == 1 ? 1 : -1;  // +1 when moving onto side 0
  sides_[c] ^= 1;
  if (to_side0 > 0) {
    ++side0_count_;
  } else {
    --side0_count_;
  }
  for (const NetId n : netlist_->nets_of(c)) {
    const auto size = static_cast<int>(netlist_->pins(n).size());
    const int before = on_side0_[n];
    const int after = before + to_side0;
    const bool was_cut = before > 0 && before < size;
    const bool is_cut = after > 0 && after < size;
    on_side0_[n] = after;
    cut_ += static_cast<int>(is_cut) - static_cast<int>(was_cut);
  }
}

void PartitionState::swap(CellId a, CellId b) {
  if (sides_[a] == sides_[b]) {
    throw std::invalid_argument("PartitionState::swap: same side");
  }
  flip(a);
  flip(b);
}

bool PartitionState::verify() const {
  PartitionState fresh{*netlist_, sides_};
  return fresh.cut_ == cut_ && fresh.on_side0_ == on_side0_ &&
         fresh.side0_count_ == side0_count_;
}

}  // namespace mcopt::partition
