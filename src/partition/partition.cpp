#include "partition/partition.hpp"

#include <cstddef>
#include <stdexcept>
#include <utility>

#include "util/invariant.hpp"

namespace mcopt::partition {

PartitionState::PartitionState(const Netlist& netlist,
                               std::vector<std::uint8_t> sides)
    : netlist_(&netlist), sides_(std::move(sides)) {
  if (sides_.size() != netlist.num_cells()) {
    throw std::invalid_argument("PartitionState: sides size != cell count");
  }
  for (const auto s : sides_) {
    if (s > 1) throw std::invalid_argument("PartitionState: side must be 0/1");
  }
  rebuild();
  reserve_scratch();
}

PartitionState::PartitionState(const PartitionState& other)
    : netlist_(other.netlist_),
      sides_(other.sides_),
      on_side0_(other.on_side0_),
      cut_(other.cut_),
      side0_count_(other.side0_count_) {
  MCOPT_DCHECK(!other.speculating(), "copying a speculating PartitionState");
  reserve_scratch();
}

PartitionState& PartitionState::operator=(const PartitionState& other) {
  if (this == &other) return *this;
  MCOPT_DCHECK(!other.speculating(), "copying a speculating PartitionState");
  netlist_ = other.netlist_;
  sides_ = other.sides_;
  on_side0_ = other.on_side0_;
  cut_ = other.cut_;
  side0_count_ = other.side0_count_;
  spec_pending_ = false;
  spec_nets_.clear();
  spec_new0_.clear();
  reserve_scratch();
  return *this;
}

void PartitionState::reserve_scratch() {
  const std::size_t nets = netlist_->num_nets();
  spec_nets_.reserve(nets);
  spec_new0_.reserve(nets);
  spec_mark_.assign(nets, 0);
}

bool PartitionState::scratch_reserved() const noexcept {
  const std::size_t nets = netlist_->num_nets();
  return spec_nets_.capacity() >= nets && spec_new0_.capacity() >= nets &&
         spec_mark_.size() == nets;
}

PartitionState PartitionState::random(const Netlist& netlist, util::Rng& rng) {
  const std::size_t n = netlist.num_cells();
  std::vector<std::uint8_t> sides(n, 1);
  std::vector<CellId> cells(n);
  for (std::size_t i = 0; i < n; ++i) cells[i] = static_cast<CellId>(i);
  rng.shuffle(cells);
  for (std::size_t i = 0; i < (n + 1) / 2; ++i) sides[cells[i]] = 0;
  return PartitionState{netlist, std::move(sides)};
}

void PartitionState::rebuild() {
  on_side0_.assign(netlist_->num_nets(), 0);
  cut_ = 0;
  side0_count_ = 0;
  for (CellId c = 0; c < sides_.size(); ++c) {
    if (sides_[c] == 0) ++side0_count_;
  }
  for (NetId n = 0; n < netlist_->num_nets(); ++n) {
    int zero = 0;
    for (const CellId c : netlist_->pins(n)) zero += sides_[c] == 0;
    on_side0_[n] = zero;
    const auto size = static_cast<int>(netlist_->pins(n).size());
    if (zero > 0 && zero < size) ++cut_;
  }
}

bool PartitionState::is_balanced() const noexcept {
  const auto n = sides_.size();
  const auto s0 = side0_count_;
  const auto s1 = n - s0;
  return (s0 > s1 ? s0 - s1 : s1 - s0) <= 1;
}

// mcopt: hot
void PartitionState::flip(CellId c) {
  MCOPT_DCHECK(c < sides_.size(), "flip cell out of range");
  const int to_side0 = sides_[c] == 1 ? 1 : -1;  // +1 when moving onto side 0
  sides_[c] ^= 1;
  if (to_side0 > 0) {
    ++side0_count_;
  } else {
    --side0_count_;
  }
  for (const NetId n : netlist_->nets_of(c)) {
    const auto size = static_cast<int>(netlist_->pins(n).size());
    const int before = on_side0_[n];
    const int after = before + to_side0;
    const bool was_cut = before > 0 && before < size;
    const bool is_cut = after > 0 && after < size;
    on_side0_[n] = after;
    cut_ += static_cast<int>(is_cut) - static_cast<int>(was_cut);
  }
}

void PartitionState::swap(CellId a, CellId b) {
  if (sides_[a] == sides_[b]) {
    throw std::invalid_argument("PartitionState::swap: same side");
  }
  flip(a);
  flip(b);
}

// mcopt: hot
void PartitionState::speculate_swap(CellId a, CellId b) {
  MCOPT_DCHECK(a < sides_.size() && b < sides_.size(),
               "swap cell out of range");
  MCOPT_DCHECK(sides_[a] != sides_[b], "speculate_swap: same side");
  MCOPT_DCHECK(!spec_pending_, "speculation already pending");
  spec_pending_ = true;
  spec_a_ = a;
  spec_b_ = b;
  const int da = sides_[a] == 1 ? 1 : -1;  // a's flip effect on on_side0_
  const int db = -da;
  for (const NetId n : netlist_->nets_of(a)) spec_mark_[n] = 1;
  for (const NetId n : netlist_->nets_of(b)) spec_mark_[n] |= 2;
  int cut = cut_;
  for (const NetId n : netlist_->nets_of(a)) {
    const char m = spec_mark_[n];
    spec_mark_[n] = 0;
    // A net with pins on both swapped cells keeps its per-side pin counts
    // (one pin leaves each side, one arrives): provably unchanged.
    if (m == 3) continue;
    const auto size = static_cast<int>(netlist_->pins(n).size());
    const int before = on_side0_[n];
    const int after = before + da;
    cut += static_cast<int>(after > 0 && after < size) -
           static_cast<int>(before > 0 && before < size);
    // Reserved to num_nets() up front; never reallocates.
    spec_nets_.push_back(n);    // mcopt-lint: allow(hot-loop-alloc)
    spec_new0_.push_back(after);  // mcopt-lint: allow(hot-loop-alloc)
  }
  for (const NetId n : netlist_->nets_of(b)) {
    if (spec_mark_[n] == 0) continue;  // shared net, already cleared above
    spec_mark_[n] = 0;
    const auto size = static_cast<int>(netlist_->pins(n).size());
    const int before = on_side0_[n];
    const int after = before + db;
    cut += static_cast<int>(after > 0 && after < size) -
           static_cast<int>(before > 0 && before < size);
    spec_nets_.push_back(n);    // mcopt-lint: allow(hot-loop-alloc)
    spec_new0_.push_back(after);  // mcopt-lint: allow(hot-loop-alloc)
  }
  spec_cut_ = cut;
}

// mcopt: hot
void PartitionState::commit_speculation() {
  MCOPT_DCHECK(spec_pending_, "commit without a pending speculation");
  sides_[spec_a_] ^= 1;
  sides_[spec_b_] ^= 1;
  for (std::size_t i = 0; i < spec_nets_.size(); ++i) {
    on_side0_[spec_nets_[i]] = spec_new0_[i];
  }
  cut_ = spec_cut_;
  // side0_count_ is unchanged: the swap moves one cell each way.
  spec_nets_.clear();
  spec_new0_.clear();
  spec_pending_ = false;
}

// mcopt: hot
void PartitionState::discard_speculation() {
  MCOPT_DCHECK(spec_pending_, "discard without a pending speculation");
  spec_nets_.clear();
  spec_new0_.clear();
  spec_pending_ = false;
}

bool PartitionState::verify() const {
  if (speculating()) return false;
  PartitionState fresh{*netlist_, sides_};
  return fresh.cut_ == cut_ && fresh.on_side0_ == on_side0_ &&
         fresh.side0_count_ == side0_count_;
}

}  // namespace mcopt::partition
