// The Kernighan-Lin two-way partitioning heuristic — the proven
// deterministic baseline the paper's methodology demands ("No attempt is
// made [in KIRK83] to compare annealing with other proven heuristic
// methods", §2).
//
// Classic formulation on graphs (every net has exactly two pins): repeat
// passes; each pass tentatively swaps the best remaining unlocked pair by
// gain g(a,b) = D_a + D_b - 2*w(a,b), locks it, and finally commits the
// prefix of tentative swaps with the largest cumulative gain.  Stops when a
// pass yields no positive gain.
#pragma once

#include <cstdint>
#include <vector>

#include "partition/partition.hpp"

namespace mcopt::partition {

struct KlResult {
  std::vector<std::uint8_t> sides;
  int cut = 0;
  unsigned passes = 0;
  /// Pair-gain evaluations performed; comparable to Monte Carlo ticks for
  /// the equal-time accounting of the partition bench.
  std::uint64_t evaluations = 0;
};

/// Runs KL from the given balanced starting assignment.  Throws
/// std::invalid_argument when the netlist is not a graph (KL's gain update
/// is defined on two-pin nets).
[[nodiscard]] KlResult kernighan_lin(const Netlist& netlist,
                                     std::vector<std::uint8_t> start_sides);

/// Convenience: KL from a balanced random start.
[[nodiscard]] KlResult kernighan_lin_random(const Netlist& netlist,
                                            util::Rng& rng);

}  // namespace mcopt::partition
