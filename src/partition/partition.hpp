// Balanced two-way circuit partitioning.
//
// The circuit partition problem is the original application of [KIRK83]
// (schedule Y1 = 10, Yi = 0.9 * Yi-1, k = 6, quoted in the paper's §1) and
// one of the two extra problems the authors studied in [NAHA84] (§5).  A
// partition assigns every cell to side 0 or 1 with sizes differing by at
// most one; the cost is the cut size — the number of nets with pins on both
// sides.  PartitionState maintains the cut incrementally under single-cell
// flips and cross-side swaps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace mcopt::partition {

using netlist::CellId;
using netlist::NetId;
using netlist::Netlist;

class PartitionState {
 public:
  /// Binds to `netlist` (must outlive this object) with the given
  /// assignment.  Throws std::invalid_argument on a size mismatch.
  PartitionState(const Netlist& netlist, std::vector<std::uint8_t> sides);

  /// Balanced random assignment: exactly ceil(n/2) cells on side 0.
  [[nodiscard]] static PartitionState random(const Netlist& netlist,
                                             util::Rng& rng);

  [[nodiscard]] const Netlist& netlist() const noexcept { return *netlist_; }
  [[nodiscard]] std::uint8_t side(CellId c) const noexcept {
    return sides_[c];
  }
  [[nodiscard]] const std::vector<std::uint8_t>& sides() const noexcept {
    return sides_;
  }
  [[nodiscard]] int cut() const noexcept { return cut_; }
  [[nodiscard]] std::size_t side_count(std::uint8_t side) const noexcept {
    return side == 0 ? side0_count_ : sides_.size() - side0_count_;
  }

  /// |#side0 - #side1| <= 1.
  [[nodiscard]] bool is_balanced() const noexcept;

  /// Flips one cell to the other side.  O(deg).
  void flip(CellId c);

  /// Swaps two cells across the cut (a and b must be on opposite sides);
  /// preserves balance.  O(deg(a) + deg(b)).
  void swap(CellId a, CellId b);

  /// Recomputes from scratch and compares; tests assert this.
  [[nodiscard]] bool verify() const;

 private:
  void rebuild();

  const Netlist* netlist_;
  std::vector<std::uint8_t> sides_;
  std::vector<int> on_side0_;  // per net: pins on side 0
  int cut_ = 0;
  std::size_t side0_count_ = 0;
};

}  // namespace mcopt::partition
