// Balanced two-way circuit partitioning.
//
// The circuit partition problem is the original application of [KIRK83]
// (schedule Y1 = 10, Yi = 0.9 * Yi-1, k = 6, quoted in the paper's §1) and
// one of the two extra problems the authors studied in [NAHA84] (§5).  A
// partition assigns every cell to side 0 or 1 with sizes differing by at
// most one; the cost is the cut size — the number of nets with pins on both
// sides.  PartitionState maintains the cut incrementally under single-cell
// flips and cross-side swaps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace mcopt::partition {

using netlist::CellId;
using netlist::NetId;
using netlist::Netlist;

class PartitionState {
 public:
  /// Binds to `netlist` (must outlive this object) with the given
  /// assignment.  Throws std::invalid_argument on a size mismatch.
  PartitionState(const Netlist& netlist, std::vector<std::uint8_t> sides);

  /// Copies re-reserve the per-move speculation scratch (vector copies
  /// shrink capacity to size, which is zero for empty scratch).
  PartitionState(const PartitionState& other);
  PartitionState& operator=(const PartitionState& other);
  PartitionState(PartitionState&&) noexcept = default;
  PartitionState& operator=(PartitionState&&) noexcept = default;
  ~PartitionState() = default;

  /// Balanced random assignment: exactly ceil(n/2) cells on side 0.
  [[nodiscard]] static PartitionState random(const Netlist& netlist,
                                             util::Rng& rng);

  [[nodiscard]] const Netlist& netlist() const noexcept { return *netlist_; }
  [[nodiscard]] std::uint8_t side(CellId c) const noexcept {
    return sides_[c];
  }
  [[nodiscard]] const std::vector<std::uint8_t>& sides() const noexcept {
    return sides_;
  }
  [[nodiscard]] int cut() const noexcept { return cut_; }
  [[nodiscard]] std::size_t side_count(std::uint8_t side) const noexcept {
    return side == 0 ? side0_count_ : sides_.size() - side0_count_;
  }

  /// |#side0 - #side1| <= 1.
  [[nodiscard]] bool is_balanced() const noexcept;

  /// Flips one cell to the other side.  O(deg).
  void flip(CellId c);

  /// Swaps two cells across the cut (a and b must be on opposite sides);
  /// preserves balance.  O(deg(a) + deg(b)).
  void swap(CellId a, CellId b);

  /// Speculatively evaluates swap(a, b) into a touched-net journal
  /// without committing: the exact candidate cut is speculative_cut().
  /// Nets incident to both cells are skipped (their pin-count per side is
  /// unchanged by a cross-side swap).  Exactly one of
  /// commit_speculation()/discard_speculation() must follow.
  void speculate_swap(CellId a, CellId b);

  /// Exact cut of the candidate recorded by the pending speculation.
  [[nodiscard]] int speculative_cut() const noexcept { return spec_cut_; }

  /// True while a speculation is pending.
  [[nodiscard]] bool speculating() const noexcept { return spec_pending_; }

  /// Commits the pending speculation in O(touched).
  void commit_speculation();

  /// Drops the pending speculation; only journal entries are cleared.
  void discard_speculation();

  /// Recomputes from scratch and compares; tests assert this.  False
  /// while a speculation is pending.
  [[nodiscard]] bool verify() const;

  /// True when the speculation scratch holds its full reservation; the
  /// clone regression test asserts this.
  [[nodiscard]] bool scratch_reserved() const noexcept;

 private:
  void rebuild();
  void reserve_scratch();

  const Netlist* netlist_;
  std::vector<std::uint8_t> sides_;
  std::vector<int> on_side0_;  // per net: pins on side 0
  int cut_ = 0;
  std::size_t side0_count_ = 0;

  // Speculation journal and scratch; reserved once, cleared per move.
  bool spec_pending_ = false;
  CellId spec_a_ = 0;
  CellId spec_b_ = 0;
  int spec_cut_ = 0;
  std::vector<NetId> spec_nets_;   // journal: nets whose on_side0_ changes
  std::vector<int> spec_new0_;     //   parallel: candidate pin count
  std::vector<char> spec_mark_;    // per-net gather marks, zero between moves
};

}  // namespace mcopt::partition
