// Fiduccia-Mattheyses single-pass-move partitioning.
//
// Kernighan-Lin (kl.hpp) is the classic graph baseline, but the paper's
// circuit workloads are hypergraphs (NOLA nets connect 2..6 cells), and KL's
// pair-swap gain algebra does not extend to multi-pin nets.  FM does: it
// moves one cell at a time, maintains per-cell gains in bucket lists keyed
// by the cut change of moving the cell, and commits the best prefix of the
// tentative move sequence, subject to a balance tolerance.  This is the
// deterministic "proven heuristic" counterpart for the hypergraph
// experiments, exactly the kind of baseline §2 faults [KIRK83] for
// omitting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "partition/partition.hpp"

namespace mcopt::partition {

struct FmOptions {
  /// Maximum allowed |#side0 - #side1| after any committed move.  The
  /// classic balanced formulation is 1 (the default); larger values let FM
  /// trade balance for cut.
  std::size_t balance_tolerance = 1;
  /// Stop after this many full passes even if still improving (a safety
  /// valve; FM converges in a handful of passes in practice).
  unsigned max_passes = 64;
};

struct FmResult {
  std::vector<std::uint8_t> sides;
  int cut = 0;
  unsigned passes = 0;
  /// Cell moves tentatively evaluated across all passes (comparable to
  /// Monte Carlo ticks for equal-work accounting).
  std::uint64_t evaluations = 0;
};

/// Runs FM from the given assignment (any netlist, including hypergraphs).
/// The starting assignment must satisfy the balance tolerance.  Throws
/// std::invalid_argument on size mismatch or an out-of-tolerance start.
[[nodiscard]] FmResult fiduccia_mattheyses(const Netlist& netlist,
                                           std::vector<std::uint8_t> start,
                                           const FmOptions& options = {});

/// Convenience: FM from a balanced random start.
[[nodiscard]] FmResult fiduccia_mattheyses_random(const Netlist& netlist,
                                                  util::Rng& rng,
                                                  const FmOptions& options = {});

}  // namespace mcopt::partition
