#include "partition/problem.hpp"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/invariant.hpp"

namespace mcopt::partition {

PartitionProblem::PartitionProblem(PartitionState start, core::EvalPath path)
    : state_(std::move(start)), path_(path) {
  if (!state_.is_balanced()) {
    throw std::invalid_argument("PartitionProblem: start is not balanced");
  }
  if (state_.netlist().num_cells() < 2) {
    throw std::invalid_argument("PartitionProblem: need at least two cells");
  }
}

// mcopt: hot
double PartitionProblem::propose(util::Rng& rng) {
  if (pending_) {
    throw std::logic_error("propose: a perturbation is already pending");
  }
  // Uniform cross-side pair via rejection on uniform distinct pairs; at
  // balance, acceptance probability is ~1/2 per draw.  The draw loop only
  // reads committed sides, so both evaluation paths consume the RNG
  // stream identically.
  const std::size_t n = state_.netlist().num_cells();
  CellId a;
  CellId b;
  do {
    const auto [x, y] = rng.next_distinct_pair(n);
    a = static_cast<CellId>(x);
    b = static_cast<CellId>(y);
  } while (state_.side(a) == state_.side(b));
  pending_ = true;
  pending_a_ = a;
  pending_b_ = b;
  if (path_ == core::EvalPath::kSpeculative) {
    state_.speculate_swap(a, b);
    return static_cast<double>(state_.speculative_cut());
  }
  state_.swap(a, b);
  return cost();
}

// mcopt: hot
void PartitionProblem::accept() {
  if (!pending_) throw std::logic_error("accept: no pending perturbation");
  if (path_ == core::EvalPath::kSpeculative) state_.commit_speculation();
  pending_ = false;
}

// mcopt: hot
void PartitionProblem::reject() {
  if (!pending_) throw std::logic_error("reject: no pending perturbation");
  if (path_ == core::EvalPath::kSpeculative) {
    state_.discard_speculation();
  } else {
    state_.swap(pending_a_, pending_b_);
  }
  pending_ = false;
}

void PartitionProblem::descend(util::WorkBudget& budget) {
  if (pending_) throw std::logic_error("descend: a perturbation is pending");
  const std::size_t n = state_.netlist().num_cells();
  bool improved = true;
  while (improved && !budget.exhausted()) {
    improved = false;
    for (CellId a = 0; a < n && !budget.exhausted(); ++a) {
      for (CellId b = a + 1; b < n && !budget.exhausted(); ++b) {
        if (state_.side(a) == state_.side(b)) continue;
        const int before = state_.cut();
        budget.charge();
        if (path_ == core::EvalPath::kSpeculative) {
          state_.speculate_swap(a, b);
          if (state_.speculative_cut() < before) {
            state_.commit_speculation();
            improved = true;
          } else {
            state_.discard_speculation();
          }
          continue;
        }
        state_.swap(a, b);
        if (state_.cut() < before) {
          improved = true;
        } else {
          state_.swap(a, b);
        }
      }
    }
  }
}

void PartitionProblem::randomize(util::Rng& rng) {
  if (pending_) throw std::logic_error("randomize: a perturbation is pending");
  state_ = PartitionState::random(state_.netlist(), rng);
}

void PartitionProblem::check_invariants() const {
  MCOPT_CHECK(!pending_, "deep check with a perturbation pending");
  MCOPT_CHECK(state_.is_balanced(), "partition lost the balance constraint");
  MCOPT_CHECK(state_.verify(),
              "incremental cut disagrees with full recompute");
}

core::Snapshot PartitionProblem::snapshot() const {
  const auto& sides = state_.sides();
  return core::Snapshot(sides.begin(), sides.end());
}

void PartitionProblem::snapshot_into(core::Snapshot& out) const {
  const auto& sides = state_.sides();
  out.assign(sides.begin(), sides.end());
}

std::unique_ptr<core::Problem> PartitionProblem::clone() const {
  return std::make_unique<PartitionProblem>(*this);
}

void PartitionProblem::restore(const core::Snapshot& snap) {
  if (pending_) throw std::logic_error("restore: a perturbation is pending");
  std::vector<std::uint8_t> sides(snap.begin(), snap.end());
  state_ = PartitionState{state_.netlist(), std::move(sides)};
}

}  // namespace mcopt::partition
