#include "partition/fm.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>

namespace mcopt::partition {

namespace {

/// Doubly-linked gain buckets for one side: cells live in the bucket of
/// their current gain; picking the max-gain cell is O(1) amortized via a
/// descending cursor.
class GainBuckets {
 public:
  GainBuckets(std::size_t num_cells, int max_gain)
      : max_gain_(max_gain),
        heads_(2 * static_cast<std::size_t>(max_gain) + 1, kNil),
        next_(num_cells, kNil),
        prev_(num_cells, kNil),
        bucket_of_(num_cells, kNoBucket) {}

  void insert(CellId c, int gain) {
    const std::size_t b = index(gain);
    next_[c] = heads_[b];
    prev_[c] = kNil;
    if (heads_[b] != kNil) prev_[heads_[b]] = c;
    heads_[b] = c;
    bucket_of_[c] = static_cast<int>(b);
    top_ = std::max(top_, static_cast<int>(b));
  }

  void erase(CellId c) {
    const int b = bucket_of_[c];
    if (b == kNoBucket) return;
    if (prev_[c] != kNil) {
      next_[prev_[c]] = next_[c];
    } else {
      heads_[static_cast<std::size_t>(b)] = next_[c];
    }
    if (next_[c] != kNil) prev_[next_[c]] = prev_[c];
    bucket_of_[c] = kNoBucket;
  }

  void reinsert(CellId c, int gain) {
    erase(c);
    insert(c, gain);
  }

  /// Highest-gain cell on this side, or kNil when empty.
  [[nodiscard]] CellId best() {
    while (top_ >= 0 && heads_[static_cast<std::size_t>(top_)] == kNil) {
      --top_;
    }
    return top_ < 0 ? kNil : heads_[static_cast<std::size_t>(top_)];
  }

  [[nodiscard]] int gain_of_bucket(CellId c) const {
    return bucket_of_[c] - max_gain_;
  }

  static constexpr CellId kNil = ~CellId{0};

 private:
  [[nodiscard]] std::size_t index(int gain) const {
    return static_cast<std::size_t>(gain + max_gain_);
  }

  static constexpr int kNoBucket = -1;
  int max_gain_;
  int top_ = -1;
  std::vector<CellId> heads_;
  std::vector<CellId> next_;
  std::vector<CellId> prev_;
  std::vector<int> bucket_of_;
};

}  // namespace

FmResult fiduccia_mattheyses(const Netlist& netlist,
                             std::vector<std::uint8_t> start,
                             const FmOptions& options) {
  const std::size_t n = netlist.num_cells();
  if (start.size() != n) {
    throw std::invalid_argument("fiduccia_mattheyses: sides size mismatch");
  }
  PartitionState state{netlist, std::move(start)};
  {
    const auto s0 = state.side_count(0);
    const auto s1 = state.side_count(1);
    const auto imbalance = s0 > s1 ? s0 - s1 : s1 - s0;
    if (imbalance > options.balance_tolerance) {
      throw std::invalid_argument(
          "fiduccia_mattheyses: start violates the balance tolerance");
    }
  }

  int max_gain = 1;
  for (CellId c = 0; c < n; ++c) {
    max_gain = std::max(max_gain, static_cast<int>(netlist.degree(c)));
  }

  FmResult result;
  // pins_on[side][net], maintained across tentative moves within a pass.
  std::vector<int> pins_on0(netlist.num_nets());
  std::vector<int> pins_on1(netlist.num_nets());
  std::vector<int> gain(n);
  std::vector<char> locked(n);

  bool improved = true;
  while (improved && result.passes < options.max_passes) {
    improved = false;
    ++result.passes;

    for (NetId net = 0; net < netlist.num_nets(); ++net) {
      int zero = 0;
      for (const CellId c : netlist.pins(net)) zero += state.side(c) == 0;
      pins_on0[net] = zero;
      pins_on1[net] = static_cast<int>(netlist.pins(net).size()) - zero;
    }

    GainBuckets buckets0(n, max_gain);
    GainBuckets buckets1(n, max_gain);
    auto buckets_of = [&](std::uint8_t side) -> GainBuckets& {
      return side == 0 ? buckets0 : buckets1;
    };

    for (CellId c = 0; c < n; ++c) {
      locked[c] = 0;
      int g = 0;
      for (const NetId net : netlist.nets_of(c)) {
        const int from = state.side(c) == 0 ? pins_on0[net] : pins_on1[net];
        const int to = state.side(c) == 0 ? pins_on1[net] : pins_on0[net];
        if (from == 1) ++g;  // moving c heals the cut net
        if (to == 0) --g;    // moving c cuts an uncut net
        ++result.evaluations;
      }
      gain[c] = g;
      buckets_of(state.side(c)).insert(c, g);
    }

    const int start_cut = state.cut();
    int best_cut = start_cut;
    std::size_t best_prefix = 0;
    std::vector<CellId> moves;
    moves.reserve(n);

    auto imbalance_after_move = [&](std::uint8_t from_side) {
      const auto from = state.side_count(from_side);
      const auto other = n - from;
      const auto new_from = from - 1;
      const auto new_other = other + 1;
      return new_from > new_other ? new_from - new_other
                                  : new_other - new_from;
    };
    auto move_is_legal = [&](std::uint8_t from_side) {
      // A single move changes the imbalance by 2, so a perfectly balanced
      // state could never move under a tight tolerance.  FM therefore
      // allows one unit of transient slack during the pass; only the
      // *committed prefix* must satisfy the tolerance (checked below).
      return state.side_count(from_side) > 0 &&
             imbalance_after_move(from_side) <=
                 options.balance_tolerance + 1;
    };

    while (moves.size() < n) {
      // Pick the legal move with the highest gain across both sides.
      const CellId c0 = move_is_legal(0) ? buckets0.best() : GainBuckets::kNil;
      const CellId c1 = move_is_legal(1) ? buckets1.best() : GainBuckets::kNil;
      CellId chosen = GainBuckets::kNil;
      if (c0 != GainBuckets::kNil && c1 != GainBuckets::kNil) {
        chosen = gain[c0] >= gain[c1] ? c0 : c1;
      } else if (c0 != GainBuckets::kNil) {
        chosen = c0;
      } else if (c1 != GainBuckets::kNil) {
        chosen = c1;
      }
      if (chosen == GainBuckets::kNil) break;

      const std::uint8_t from_side = state.side(chosen);
      buckets_of(from_side).erase(chosen);
      locked[chosen] = 1;
      ++result.evaluations;

      // Standard FM critical-net gain updates around the move.
      for (const NetId net : netlist.nets_of(chosen)) {
        auto& from_pins = from_side == 0 ? pins_on0[net] : pins_on1[net];
        auto& to_pins = from_side == 0 ? pins_on1[net] : pins_on0[net];
        const auto pins = netlist.pins(net);

        auto bump = [&](CellId d, int delta) {
          if (locked[d]) return;
          gain[d] += delta;
          buckets_of(state.side(d)).reinsert(d, gain[d]);
          ++result.evaluations;
        };

        if (to_pins == 0) {
          for (const CellId d : pins) bump(d, +1);
        } else if (to_pins == 1) {
          for (const CellId d : pins) {
            if (state.side(d) != from_side) bump(d, -1);
          }
        }
        --from_pins;
        ++to_pins;
        if (from_pins == 0) {
          for (const CellId d : pins) bump(d, -1);
        } else if (from_pins == 1) {
          for (const CellId d : pins) {
            if (state.side(d) == from_side && d != chosen) bump(d, +1);
          }
        }
      }
      state.flip(chosen);
      moves.push_back(chosen);

      const auto s0 = state.side_count(0);
      const auto s1 = n - s0;
      const auto imbalance = s0 > s1 ? s0 - s1 : s1 - s0;
      if (imbalance <= options.balance_tolerance &&
          state.cut() < best_cut) {
        best_cut = state.cut();
        best_prefix = moves.size();
      }
    }

    // Roll back to the best prefix.
    for (std::size_t i = moves.size(); i > best_prefix; --i) {
      state.flip(moves[i - 1]);
    }
    if (best_cut < start_cut) improved = true;
  }

  result.sides = state.sides();
  result.cut = state.cut();
  return result;
}

FmResult fiduccia_mattheyses_random(const Netlist& netlist, util::Rng& rng,
                                    const FmOptions& options) {
  return fiduccia_mattheyses(netlist,
                             PartitionState::random(netlist, rng).sides(),
                             options);
}

}  // namespace mcopt::partition
