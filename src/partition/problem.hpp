// Balanced partitioning as a core::Problem.
//
// The random perturbation is a cross-side pair swap, which preserves the
// balance constraint exactly (the feasibility requirement of §1's "let j be
// a feasible solution ... obtained from i as a result of a random
// perturbation").  descend() sweeps all cross-side pairs to local
// optimality, mirroring the pairwise-interchange descent of the linear
// arrangement problem.
#pragma once

#include <memory>

#include "core/problem.hpp"
#include "partition/partition.hpp"

namespace mcopt::partition {

class PartitionProblem final : public core::Problem {
 public:
  /// Starts from `start` (must be balanced).  The underlying netlist must
  /// outlive the problem.  `path` picks the proposal evaluation strategy
  /// (see core::EvalPath); both paths produce bit-identical trajectories.
  explicit PartitionProblem(PartitionState start,
                            core::EvalPath path = core::EvalPath::kSpeculative);

  // core::Problem
  [[nodiscard]] double cost() const override {
    return static_cast<double>(state_.cut());
  }
  double propose(util::Rng& rng) override;
  void accept() override;
  void reject() override;
  void descend(util::WorkBudget& budget) override;
  void randomize(util::Rng& rng) override;
  [[nodiscard]] core::Snapshot snapshot() const override;
  void snapshot_into(core::Snapshot& out) const override;
  void restore(const core::Snapshot& snap) override;
  void check_invariants() const override;
  /// Deep copy sharing only the immutable netlist.
  [[nodiscard]] std::unique_ptr<core::Problem> clone() const override;

  [[nodiscard]] const PartitionState& state() const noexcept { return state_; }
  [[nodiscard]] core::EvalPath eval_path() const noexcept { return path_; }

 private:
  PartitionState state_;
  core::EvalPath path_;
  bool pending_ = false;
  CellId pending_a_ = 0;
  CellId pending_b_ = 0;
};

}  // namespace mcopt::partition
